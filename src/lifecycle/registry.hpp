// Versioned on-disk model registry + in-memory published-policy cell.
//
// Training produces checkpoints; serving needs a *sequence* of policies
// it can adopt, compare and roll back between — the registry is the
// durable half of that contract and PolicySlot the in-memory half.
//
// On-disk layout (one directory per registry):
//
//   MANIFEST              index: "gddr.registry.v1" header, then one
//                         line per version — "<id> <file> <bytes> <crc>"
//                         in ascending id order.
//   v000001.gddrparm ...  one parameters-only GDDRPARM v2 container per
//                         published version.
//
// Durability and crash safety:
//  * publish_file() fully validates the source checkpoint (container
//    CRCs, then every parameter shape against the configured GnnPolicy
//    architecture) *before* anything is written;
//  * the version file and the MANIFEST each land via
//    util::write_file_atomic (tmp + fsync + rename) — a crash between
//    the two leaves an orphaned version file that the next open adopts
//    back into the manifest, so a published version is never lost and a
//    torn one is never visible;
//  * version ids are monotonic (max existing + 1) and never reused, even
//    after retention pruning deletes old files;
//  * load() re-checks the stored CRC over the whole file against the
//    manifest before parsing, so silent bit rot is named at the registry
//    boundary rather than surfacing as a weight-shaped parse error.
//
// Fault site: registry_publish fails a publish before any byte is
// written (the registry stays exactly as it was).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/policies.hpp"
#include "util/sync.hpp"

namespace gddr::lifecycle {

struct RegistryConfig {
  // Newest versions kept on disk; older files are pruned at publish
  // time (their ids remain burned).  Must be >= 1.
  int retention = 8;
  // Architecture every published checkpoint must match.  Publishing a
  // mismatched checkpoint fails validation instead of producing a
  // version that every load would reject.
  core::GnnPolicyConfig policy;
};

struct RegistryEntry {
  std::uint64_t version = 0;
  std::string filename;  // relative to the registry directory
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;  // util::crc32 over the whole file
};

class ModelRegistry {
 public:
  // Opens (creating the directory if needed) and scans the registry:
  // parses MANIFEST and adopts any orphaned v*.gddrparm files a crash
  // left behind.  Throws util::IoError on an unreadable or malformed
  // registry.
  ModelRegistry(std::string dir, RegistryConfig config);

  // Publishes the kParameters section of `checkpoint_path` (any
  // GDDRPARM v1/v2 file — full trainer checkpoints are stripped to
  // parameters only) as the next version.  Validates container CRCs and
  // every parameter shape against the configured architecture first.
  // Returns the new version id.  Throws util::IoError on validation or
  // I/O failure (including the injected registry_publish fault); the
  // registry is unchanged on any throw.
  std::uint64_t publish_file(const std::string& checkpoint_path)
      GDDR_EXCLUDES(mu_);

  // Loads `version` into a freshly constructed policy (CRC-checked
  // against the manifest first).  Throws util::IoError on an unknown
  // version or a corrupt file.
  std::shared_ptr<const core::GnnPolicy> load(std::uint64_t version) const
      GDDR_EXCLUDES(mu_);

  // Snapshot of the index, ascending by version.
  std::vector<RegistryEntry> entries() const GDDR_EXCLUDES(mu_);
  // Newest version id; 0 when the registry is empty.
  std::uint64_t latest() const GDDR_EXCLUDES(mu_);

  const std::string& dir() const { return dir_; }
  const RegistryConfig& config() const { return config_; }

 private:
  void scan() GDDR_REQUIRES(mu_);
  void write_manifest() const GDDR_REQUIRES(mu_);

  std::string dir_;
  RegistryConfig config_;
  mutable util::Mutex mu_{util::LockRank::kModelRegistry,
                          "lifecycle/registry"};
  std::vector<RegistryEntry> entries_ GDDR_GUARDED_BY(mu_);
};

// RCU-style published-policy cell: writers store() a complete
// (policy, version) pair, readers load() a shared_ptr copy that stays
// valid however many swaps happen after — no torn reads, no lifetime
// cliff.  This is the standalone primitive mirroring the slot built
// into serve::Engine; the lifecycle layer uses it to track the
// last-good (rollback target) policy.
class PolicySlot {
 public:
  struct Value {
    std::shared_ptr<const core::GnnPolicy> policy;
    std::uint64_t version = 0;
  };

  Value load() const GDDR_EXCLUDES(mu_) {
    const util::MutexLock lock(mu_);
    return value_;
  }

  void store(Value value) GDDR_EXCLUDES(mu_) {
    const util::MutexLock lock(mu_);
    value_ = std::move(value);
    ++swaps_;
  }

  long swaps() const GDDR_EXCLUDES(mu_) {
    const util::MutexLock lock(mu_);
    return swaps_;
  }

 private:
  mutable util::Mutex mu_{util::LockRank::kPolicySlot, "lifecycle/slot"};
  Value value_ GDDR_GUARDED_BY(mu_);
  long swaps_ GDDR_GUARDED_BY(mu_) = 0;
};

}  // namespace gddr::lifecycle
