#include "lifecycle/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/fs.hpp"
#include "util/rng.hpp"

namespace gddr::lifecycle {
namespace {

constexpr const char* kManifestHeader = "gddr.registry.v1";
constexpr const char* kManifestName = "MANIFEST";

std::string version_filename(std::uint64_t version) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "v%06llu.gddrparm",
                static_cast<unsigned long long>(version));
  return buf;
}

// Inverse of version_filename: 0 when `name` is not a version file.
std::uint64_t parse_version_filename(const std::string& name) {
  if (name.size() < 2 || name.front() != 'v') return 0;
  const std::size_t dot = name.find('.');
  if (dot == std::string::npos || name.substr(dot) != ".gddrparm") return 0;
  std::uint64_t version = 0;
  for (std::size_t i = 1; i < dot; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    version = version * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  return version;
}

std::string read_file(const std::string& path, const std::string& what) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw util::IoError("ModelRegistry: cannot open " + what + " '" + path +
                        "'");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw util::IoError("ModelRegistry: failed reading " + what + " '" +
                        path + "'");
  }
  return std::move(buf).str();
}

// Shape-validates `payload` against the configured architecture by
// loading it into a throwaway policy — the same staged, fully-validating
// path a real load takes, so publish and load can never disagree about
// what is acceptable.
void validate_parameters(const std::string& payload,
                         const core::GnnPolicyConfig& config,
                         const std::string& context) {
  util::Rng rng(1);
  core::GnnPolicy probe(config, rng);
  const std::vector<nn::Parameter*> params = probe.parameters();
  nn::load_parameters_payload(payload, params, context);
}

}  // namespace

ModelRegistry::ModelRegistry(std::string dir, RegistryConfig config)
    : dir_(std::move(dir)), config_(config) {
  if (config_.retention < 1) {
    throw std::invalid_argument("ModelRegistry: retention must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw util::IoError("ModelRegistry: cannot create directory '" + dir_ +
                        "': " + ec.message());
  }
  const util::MutexLock lock(mu_);
  scan();
}

void ModelRegistry::scan() {
  entries_.clear();
  const std::string manifest_path = dir_ + "/" + kManifestName;
  bool have_manifest = std::filesystem::exists(manifest_path);
  if (have_manifest) {
    std::istringstream in(read_file(manifest_path, "manifest"));
    std::string header;
    std::getline(in, header);
    if (header != kManifestHeader) {
      throw util::IoError("ModelRegistry: bad manifest header '" + header +
                          "' in '" + manifest_path + "'");
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream fields(line);
      RegistryEntry entry;
      if (!(fields >> entry.version >> entry.filename >> entry.bytes >>
            entry.crc) ||
          entry.version == 0) {
        throw util::IoError("ModelRegistry: malformed manifest line '" +
                            line + "' in '" + manifest_path + "'");
      }
      entries_.push_back(std::move(entry));
    }
  }

  // Adopt orphaned version files (a crash between writing the version
  // file and rewriting the manifest): the publish survived, so it is
  // re-indexed rather than silently ignored or deleted.
  bool adopted = false;
  for (const auto& dirent : std::filesystem::directory_iterator(dir_)) {
    if (!dirent.is_regular_file()) continue;
    const std::string name = dirent.path().filename().string();
    const std::uint64_t version = parse_version_filename(name);
    if (version == 0) continue;
    const bool known = std::any_of(
        entries_.begin(), entries_.end(),
        [version](const RegistryEntry& e) { return e.version == version; });
    if (known) continue;
    const std::string contents = read_file(dirent.path().string(), "orphan");
    RegistryEntry entry;
    entry.version = version;
    entry.filename = name;
    entry.bytes = contents.size();
    entry.crc = util::crc32(contents);
    entries_.push_back(std::move(entry));
    adopted = true;
  }

  std::sort(entries_.begin(), entries_.end(),
            [](const RegistryEntry& a, const RegistryEntry& b) {
              return a.version < b.version;
            });
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    if (entries_[i].version == entries_[i - 1].version) {
      throw util::IoError("ModelRegistry: duplicate version " +
                          std::to_string(entries_[i].version) + " in '" +
                          manifest_path + "'");
    }
  }
  if (adopted) write_manifest();
}

void ModelRegistry::write_manifest() const {
  std::ostringstream out;
  out << kManifestHeader << "\n";
  for (const RegistryEntry& entry : entries_) {
    out << entry.version << ' ' << entry.filename << ' ' << entry.bytes
        << ' ' << entry.crc << "\n";
  }
  util::write_file_atomic(dir_ + "/" + kManifestName, out.str());
}

std::uint64_t ModelRegistry::publish_file(
    const std::string& checkpoint_path) {
  if (util::inject(util::FaultSite::kRegistryPublish)) {
    obs::count("lifecycle/fault/registry_publish");
    throw util::IoError("ModelRegistry: injected publish fault for '" +
                        checkpoint_path + "'");
  }

  // Validate everything before the lock and before any write: container
  // CRCs, section presence, and every parameter shape.
  const nn::ContainerReader source(checkpoint_path);
  const std::string& payload = source.payload(nn::Section::kParameters);
  validate_parameters(payload, config_.policy,
                      "ModelRegistry publish '" + checkpoint_path + "'");

  nn::ContainerWriter writer;
  writer.add(nn::Section::kParameters, payload);

  const util::MutexLock lock(mu_);
  const std::uint64_t version =
      entries_.empty() ? 1 : entries_.back().version + 1;
  const std::string filename = version_filename(version);
  const std::string path = dir_ + "/" + filename;
  writer.write(path);  // atomic (tmp + fsync + rename)

  // Read the published bytes back so the manifest CRC covers exactly
  // what a future load() will see.
  const std::string contents = read_file(path, "published version");
  RegistryEntry entry;
  entry.version = version;
  entry.filename = filename;
  entry.bytes = contents.size();
  entry.crc = util::crc32(contents);
  entries_.push_back(std::move(entry));

  while (entries_.size() > static_cast<std::size_t>(config_.retention)) {
    std::error_code ec;
    std::filesystem::remove(dir_ + "/" + entries_.front().filename, ec);
    // A file that refuses to delete costs disk, not correctness; the
    // manifest drop below still retires the version.
    entries_.erase(entries_.begin());
  }
  write_manifest();
  obs::count("lifecycle/publishes");
  return version;
}

std::shared_ptr<const core::GnnPolicy> ModelRegistry::load(
    std::uint64_t version) const {
  RegistryEntry entry;
  {
    const util::MutexLock lock(mu_);
    const auto it = std::find_if(
        entries_.begin(), entries_.end(),
        [version](const RegistryEntry& e) { return e.version == version; });
    if (it == entries_.end()) {
      throw util::IoError("ModelRegistry: unknown version " +
                          std::to_string(version) + " in '" + dir_ + "'");
    }
    entry = *it;
  }

  const std::string path = dir_ + "/" + entry.filename;
  const std::string contents = read_file(path, "version file");
  if (contents.size() != entry.bytes || util::crc32(contents) != entry.crc) {
    throw util::IoError("ModelRegistry: version " + std::to_string(version) +
                        " ('" + path + "') does not match its manifest "
                        "size/CRC — refusing to load corrupt weights");
  }

  const nn::ContainerReader reader(path);
  util::Rng rng(1);
  auto policy = std::make_shared<core::GnnPolicy>(config_.policy, rng);
  const std::vector<nn::Parameter*> params = policy->parameters();
  nn::load_parameters_payload(
      reader.payload(nn::Section::kParameters), params,
      "ModelRegistry load v" + std::to_string(version));
  return policy;
}

std::vector<RegistryEntry> ModelRegistry::entries() const {
  const util::MutexLock lock(mu_);
  return entries_;
}

std::uint64_t ModelRegistry::latest() const {
  const util::MutexLock lock(mu_);
  return entries_.empty() ? 0 : entries_.back().version;
}

}  // namespace gddr::lifecycle
