#include "lifecycle/promoter.hpp"

#include <stdexcept>
#include <utility>

#include "obs/metrics.hpp"

namespace gddr::lifecycle {
namespace {

ShadowConfig shadow_config(const PromoterConfig& config) {
  ShadowConfig sc;
  sc.fraction = config.shadow_fraction;
  sc.latency_window = config.latency_window;
  sc.router = config.router;
  return sc;
}

}  // namespace

const char* to_string(PromoteState state) {
  switch (state) {
    case PromoteState::kIdle:
      return "idle";
    case PromoteState::kStaged:
      return "staged";
    case PromoteState::kShadow:
      return "shadow";
    case PromoteState::kCanary:
      return "canary";
    case PromoteState::kLive:
      return "live";
    case PromoteState::kRolledBack:
      return "rolled_back";
  }
  return "?";
}

Promoter::Promoter(ModelRegistry& registry, serve::Engine& engine,
                   PromoterConfig config)
    : registry_(registry),
      engine_(engine),
      config_(config),
      shadow_(shadow_config(config)) {
  if (config_.promote_after < 1) {
    throw std::invalid_argument("Promoter: promote_after must be >= 1");
  }
  if (config_.canary_decisions < 1) {
    throw std::invalid_argument("Promoter: canary_decisions must be >= 1");
  }
}

void Promoter::stage(std::uint64_t version) {
  const util::MutexLock lock(mu_);
  if (state_ == PromoteState::kStaged || state_ == PromoteState::kShadow ||
      state_ == PromoteState::kCanary) {
    throw std::logic_error(
        "Promoter: a promotion is already in flight (state " +
        std::string(to_string(state_)) + ")");
  }
  state_ = PromoteState::kStaged;
  std::shared_ptr<const core::GnnPolicy> candidate;
  try {
    candidate = registry_.load(version);
  } catch (...) {
    // A candidate that cannot even load never reaches traffic; this is
    // not a rollback (nothing was serving), just a failed stage.
    state_ = PromoteState::kIdle;
    throw;
  }
  candidate_ = std::move(candidate);
  candidate_version_ = version;
  staged_at_ = Clock::now();
  canary_served_ = 0;
  canary_failures_ = 0;
  shadow_.arm(candidate_, version);
  state_ = PromoteState::kShadow;
}

void Promoter::observe(const serve::RouteRequest& request,
                       const serve::DecisionRecord& record) {
  const util::MutexLock lock(mu_);
  switch (state_) {
    case PromoteState::kShadow: {
      shadow_.observe(request, record);
      const ShadowStats s = shadow_.stats();
      if (s.nonfinite_outputs > 0) {
        rollback("candidate_nan");
        return;
      }
      if (s.candidate_failures > config_.max_candidate_failures) {
        rollback("shadow_candidate_failures");
        return;
      }
      if (s.mirrored >= config_.promote_after) {
        const bool win_ok = s.win_rate() >= config_.min_win_rate;
        const bool latency_ok =
            config_.max_p99_latency_us <= 0.0 ||
            s.p99_latency_us <= config_.max_p99_latency_us;
        if (win_ok && latency_ok) {
          engine_.set_candidate(candidate_, candidate_version_,
                                config_.canary_fraction);
          state_ = PromoteState::kCanary;
        } else {
          rollback(win_ok ? "shadow_latency_gate" : "shadow_win_rate_gate");
        }
      }
      break;
    }
    case PromoteState::kCanary: {
      if (!record.served_by_candidate ||
          record.policy_version != candidate_version_) {
        break;
      }
      if (record.nonfinite_policy_output) {
        rollback("candidate_nan");
        return;
      }
      if (record.rung != serve::Rung::kGnnPolicy) {
        if (++canary_failures_ > config_.max_candidate_failures) {
          rollback("canary_candidate_failures");
          return;
        }
      }
      ++canary_served_;
      if (canary_served_ >= config_.canary_decisions) promote();
      break;
    }
    case PromoteState::kIdle:
    case PromoteState::kStaged:
    case PromoteState::kLive:
    case PromoteState::kRolledBack:
      break;
  }
}

void Promoter::promote() {
  // Order matters for attribution: the canary is disarmed first so no
  // later batch is still marked candidate-served, then the hot swap
  // installs the candidate as live (workers adopt it at their next
  // batch boundary — zero downtime).
  engine_.clear_candidate();
  engine_.set_policy(candidate_, candidate_version_);
  shadow_.disarm();
  state_ = PromoteState::kLive;
  ++promotions_;
  obs::observe("lifecycle/promote_latency_us",
               std::chrono::duration<double, std::micro>(Clock::now() -
                                                         staged_at_)
                   .count());
}

void Promoter::rollback(const std::string& reason) {
  engine_.clear_candidate();
  shadow_.disarm();
  state_ = PromoteState::kRolledBack;
  ++rollbacks_;
  rollback_reason_ = reason;
  obs::count("lifecycle/rollbacks");
}

PromoteState Promoter::state() const {
  const util::MutexLock lock(mu_);
  return state_;
}

Promoter::Summary Promoter::summary() const {
  const util::MutexLock lock(mu_);
  Summary out;
  out.state = state_;
  out.candidate_version = candidate_version_;
  out.promotions = promotions_;
  out.rollbacks = rollbacks_;
  out.rollback_reason = rollback_reason_;
  out.canary_served = canary_served_;
  out.shadow = shadow_.stats();
  return out;
}

}  // namespace gddr::lifecycle
