// Capacitated directed graph: the network substrate for all of GDDR.
//
// Nodes and edges are dense integer ids (NodeId in [0, num_nodes),
// EdgeId in [0, num_edges)), which lets every downstream component (LP
// formulations, routing tables, GNN feature matrices) index flat arrays by
// id with no hashing.  Removal operations return compacted copies so ids
// stay dense; topology mutation (the Figure-8 experiment) works on copies.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace gddr::graph {

using NodeId = std::int32_t;
using EdgeId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr EdgeId kInvalidEdge = -1;

struct Edge {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  double capacity = 1.0;
};

class DiGraph {
 public:
  DiGraph() = default;
  explicit DiGraph(int num_nodes, std::string name = "");

  // --- construction ---
  NodeId add_node();
  // Adds a directed edge u -> v.  Requires u != v (self-loops carry no
  // traffic and break the routing translation) and valid node ids.
  EdgeId add_edge(NodeId u, NodeId v, double capacity);
  // Adds u -> v and v -> u with the same capacity; returns the first id.
  EdgeId add_bidirectional(NodeId u, NodeId v, double capacity);

  // --- accessors ---
  int num_nodes() const { return static_cast<int>(out_edges_.size()); }
  int num_edges() const { return static_cast<int>(edges_.size()); }
  const Edge& edge(EdgeId e) const { return edges_[static_cast<size_t>(e)]; }
  const std::vector<Edge>& edges() const { return edges_; }
  std::span<const EdgeId> out_edges(NodeId v) const {
    return out_edges_[static_cast<size_t>(v)];
  }
  std::span<const EdgeId> in_edges(NodeId v) const {
    return in_edges_[static_cast<size_t>(v)];
  }
  // First edge u -> v if present.
  std::optional<EdgeId> find_edge(NodeId u, NodeId v) const;
  bool valid_node(NodeId v) const { return v >= 0 && v < num_nodes(); }

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Sum of all edge capacities.
  double total_capacity() const;

  // --- compacting mutations (return modified copies) ---
  // Removes the edges whose ids are flagged in `remove` (size num_edges()).
  DiGraph without_edges(const std::vector<bool>& remove) const;
  DiGraph without_edge(EdgeId e) const;
  // Removes node v and all incident edges; remaining nodes are renumbered
  // (ids above v shift down by one).
  DiGraph without_node(NodeId v) const;

  bool operator==(const DiGraph& other) const;

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> out_edges_;
  std::vector<std::vector<EdgeId>> in_edges_;
  std::string name_;
};

}  // namespace gddr::graph
