#include "graph/graph_invariants.hpp"

#include <string>

#include "util/contract.hpp"

namespace gddr::graph {

using util::contract::violate_invariant;

void check_acyclic(const DiGraph& g, const std::vector<bool>& edge_mask,
                   std::string_view label) {
  if (!has_cycle(g, edge_mask)) return;
  std::size_t masked = 0;
  for (const bool b : edge_mask) {
    if (b) ++masked;
  }
  violate_invariant("masked subgraph is acyclic", label,
          util::contract::describe("masked_edges", masked, "num_nodes",
                                   g.num_nodes()));
}

void check_topological_order(const DiGraph& g,
                             const std::vector<bool>& edge_mask,
                             const std::vector<NodeId>& order,
                             std::string_view label) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (order.size() != n) {
    violate_invariant("topological order covers every node", label,
            util::contract::describe("order_size", order.size(), "num_nodes",
                                     n));
  }
  std::vector<int> position(n, -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto v = static_cast<std::size_t>(order[i]);
    if (order[i] < 0 || v >= n || position[v] != -1) {
      violate_invariant("topological order is a permutation", label,
              util::contract::describe("index", i, "node", order[i]));
    }
    position[v] = static_cast<int>(i);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!edge_mask[static_cast<std::size_t>(e)]) continue;
    const auto& ed = g.edge(e);
    if (position[static_cast<std::size_t>(ed.src)] >=
        position[static_cast<std::size_t>(ed.dst)]) {
      violate_invariant("every masked edge points forward in the order", label,
              util::contract::describe(
                  "edge", e, "src", ed.src, "dst", ed.dst, "src_pos",
                  position[static_cast<std::size_t>(ed.src)], "dst_pos",
                  position[static_cast<std::size_t>(ed.dst)]));
    }
  }
}

}  // namespace gddr::graph
