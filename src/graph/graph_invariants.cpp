#include "graph/graph_invariants.hpp"

#include <cmath>
#include <string>

#include "util/contract.hpp"

namespace gddr::graph {

using util::contract::violate_invariant;

void check_acyclic(const DiGraph& g, const std::vector<bool>& edge_mask,
                   std::string_view label) {
  if (!has_cycle(g, edge_mask)) return;
  std::size_t masked = 0;
  for (const bool b : edge_mask) {
    if (b) ++masked;
  }
  violate_invariant("masked subgraph is acyclic", label,
          util::contract::describe("masked_edges", masked, "num_nodes",
                                   g.num_nodes()));
}

void check_topological_order(const DiGraph& g,
                             const std::vector<bool>& edge_mask,
                             const std::vector<NodeId>& order,
                             std::string_view label) {
  const auto n = static_cast<std::size_t>(g.num_nodes());
  if (order.size() != n) {
    violate_invariant("topological order covers every node", label,
            util::contract::describe("order_size", order.size(), "num_nodes",
                                     n));
  }
  std::vector<int> position(n, -1);
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto v = static_cast<std::size_t>(order[i]);
    if (order[i] < 0 || v >= n || position[v] != -1) {
      violate_invariant("topological order is a permutation", label,
              util::contract::describe("index", i, "node", order[i]));
    }
    position[v] = static_cast<int>(i);
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (!edge_mask[static_cast<std::size_t>(e)]) continue;
    const auto& ed = g.edge(e);
    if (position[static_cast<std::size_t>(ed.src)] >=
        position[static_cast<std::size_t>(ed.dst)]) {
      violate_invariant("every masked edge points forward in the order", label,
              util::contract::describe(
                  "edge", e, "src", ed.src, "dst", ed.dst, "src_pos",
                  position[static_cast<std::size_t>(ed.src)], "dst_pos",
                  position[static_cast<std::size_t>(ed.dst)]));
    }
  }
}

void check_topology(const DiGraph& g, std::string_view label) {
  const int n = g.num_nodes();
  std::vector<std::size_t> out_seen(static_cast<std::size_t>(n), 0);
  std::vector<std::size_t> in_seen(static_cast<std::size_t>(n), 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    if (!g.valid_node(ed.src) || !g.valid_node(ed.dst)) {
      violate_invariant("edge endpoints are valid node ids", label,
              util::contract::describe("edge", e, "src", ed.src, "dst",
                                       ed.dst, "num_nodes", n));
    }
    if (ed.src == ed.dst) {
      violate_invariant("no self-loops", label,
              util::contract::describe("edge", e, "node", ed.src));
    }
    if (!std::isfinite(ed.capacity) || ed.capacity <= 0.0) {
      violate_invariant("edge capacity is positive and finite", label,
              util::contract::describe("edge", e, "capacity", ed.capacity));
    }
    ++out_seen[static_cast<std::size_t>(ed.src)];
    ++in_seen[static_cast<std::size_t>(ed.dst)];
  }
  for (NodeId v = 0; v < n; ++v) {
    const auto outs = g.out_edges(v);
    const auto ins = g.in_edges(v);
    if (outs.size() != out_seen[static_cast<std::size_t>(v)] ||
        ins.size() != in_seen[static_cast<std::size_t>(v)]) {
      violate_invariant("adjacency index agrees with the edge list", label,
              util::contract::describe(
                  "node", v, "out_index", outs.size(), "out_edges",
                  out_seen[static_cast<std::size_t>(v)], "in_index",
                  ins.size(), "in_edges",
                  in_seen[static_cast<std::size_t>(v)]));
    }
    for (const EdgeId e : outs) {
      if (e < 0 || e >= g.num_edges() || g.edge(e).src != v) {
        violate_invariant("out-adjacency entries name edges leaving the node",
                label, util::contract::describe("node", v, "edge", e));
      }
    }
    for (const EdgeId e : ins) {
      if (e < 0 || e >= g.num_edges() || g.edge(e).dst != v) {
        violate_invariant("in-adjacency entries name edges entering the node",
                label, util::contract::describe("node", v, "edge", e));
      }
    }
  }
}

}  // namespace gddr::graph
