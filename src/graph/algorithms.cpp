#include "graph/algorithms.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>
#include <set>
#include <stdexcept>

namespace gddr::graph {
namespace {

// (distance, node) min-heap entry.
using HeapEntry = std::pair<double, NodeId>;

void check_weights(const DiGraph& g, const std::vector<double>& weights) {
  if (weights.size() != static_cast<size_t>(g.num_edges())) {
    throw std::invalid_argument("weight vector size != num_edges");
  }
  for (double w : weights) {
    if (!(w >= 0.0)) {
      throw std::invalid_argument("Dijkstra requires non-negative weights");
    }
  }
}

ShortestPaths dijkstra_impl(const DiGraph& g, NodeId origin,
                            const std::vector<double>& weights,
                            bool reverse) {
  check_weights(g, weights);
  if (!g.valid_node(origin)) {
    throw std::out_of_range("dijkstra: invalid origin");
  }
  const auto n = static_cast<size_t>(g.num_nodes());
  ShortestPaths sp;
  sp.dist.assign(n, kInfDist);
  sp.parent_edge.assign(n, kInvalidEdge);
  std::vector<bool> done(n, false);

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, std::greater<>> pq;
  sp.dist[static_cast<size_t>(origin)] = 0.0;
  pq.emplace(0.0, origin);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (done[static_cast<size_t>(v)]) continue;
    done[static_cast<size_t>(v)] = true;
    const auto edges = reverse ? g.in_edges(v) : g.out_edges(v);
    for (EdgeId e : edges) {
      const Edge& ed = g.edge(e);
      const NodeId u = reverse ? ed.src : ed.dst;
      const double nd = d + weights[static_cast<size_t>(e)];
      if (nd < sp.dist[static_cast<size_t>(u)]) {
        sp.dist[static_cast<size_t>(u)] = nd;
        sp.parent_edge[static_cast<size_t>(u)] = e;
        pq.emplace(nd, u);
      }
    }
  }
  return sp;
}

}  // namespace

ShortestPaths dijkstra(const DiGraph& g, NodeId src,
                       const std::vector<double>& weights) {
  return dijkstra_impl(g, src, weights, /*reverse=*/false);
}

ShortestPaths dijkstra_to(const DiGraph& g, NodeId dst,
                          const std::vector<double>& weights) {
  return dijkstra_impl(g, dst, weights, /*reverse=*/true);
}

std::vector<double> unit_weights(const DiGraph& g) {
  return std::vector<double>(static_cast<size_t>(g.num_edges()), 1.0);
}

std::vector<NodeId> extract_path(const DiGraph& g, const ShortestPaths& sp,
                                 NodeId src, NodeId dst) {
  if (sp.dist[static_cast<size_t>(dst)] == kInfDist) return {};
  std::vector<NodeId> path;
  NodeId v = dst;
  path.push_back(v);
  while (v != src) {
    const EdgeId pe = sp.parent_edge[static_cast<size_t>(v)];
    if (pe == kInvalidEdge) return {};  // origin was not src
    v = g.edge(pe).src;
    path.push_back(v);
    if (path.size() > static_cast<size_t>(g.num_nodes())) return {};
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::optional<std::vector<NodeId>> topological_order(
    const DiGraph& g, const std::vector<bool>& edge_mask) {
  assert(edge_mask.size() == static_cast<size_t>(g.num_edges()));
  const auto n = static_cast<size_t>(g.num_nodes());
  std::vector<int> in_degree(n, 0);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (edge_mask[static_cast<size_t>(e)]) {
      ++in_degree[static_cast<size_t>(g.edge(e).dst)];
    }
  }
  std::vector<NodeId> order;
  order.reserve(n);
  std::queue<NodeId> ready;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (in_degree[static_cast<size_t>(v)] == 0) ready.push(v);
  }
  while (!ready.empty()) {
    const NodeId v = ready.front();
    ready.pop();
    order.push_back(v);
    for (EdgeId e : g.out_edges(v)) {
      if (!edge_mask[static_cast<size_t>(e)]) continue;
      const NodeId u = g.edge(e).dst;
      if (--in_degree[static_cast<size_t>(u)] == 0) ready.push(u);
    }
  }
  if (order.size() != n) return std::nullopt;
  return order;
}

bool has_cycle(const DiGraph& g, const std::vector<bool>& edge_mask) {
  return !topological_order(g, edge_mask).has_value();
}

bool is_strongly_connected(const DiGraph& g) {
  if (g.num_nodes() == 0) return true;
  const auto n = static_cast<size_t>(g.num_nodes());
  // Forward and backward BFS from node 0 must each reach every node.
  for (const bool reverse : {false, true}) {
    std::vector<bool> seen(n, false);
    std::queue<NodeId> q;
    q.push(0);
    seen[0] = true;
    size_t count = 1;
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      const auto edges = reverse ? g.in_edges(v) : g.out_edges(v);
      for (EdgeId e : edges) {
        const NodeId u = reverse ? g.edge(e).src : g.edge(e).dst;
        if (!seen[static_cast<size_t>(u)]) {
          seen[static_cast<size_t>(u)] = true;
          ++count;
          q.push(u);
        }
      }
    }
    if (count != n) return false;
  }
  return true;
}

std::vector<std::vector<double>> all_pairs_distances(
    const DiGraph& g, const std::vector<double>& weights) {
  std::vector<std::vector<double>> dist;
  dist.reserve(static_cast<size_t>(g.num_nodes()));
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    dist.push_back(dijkstra(g, s, weights).dist);
  }
  return dist;
}

std::vector<std::vector<EdgeId>> shortest_path_dag_to(
    const DiGraph& g, NodeId dst, const std::vector<double>& weights) {
  const ShortestPaths sp = dijkstra_to(g, dst, weights);
  std::vector<std::vector<EdgeId>> dag(static_cast<size_t>(g.num_nodes()));
  constexpr double kTol = 1e-9;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (v == dst || sp.dist[static_cast<size_t>(v)] == kInfDist) continue;
    for (EdgeId e : g.out_edges(v)) {
      const NodeId u = g.edge(e).dst;
      if (sp.dist[static_cast<size_t>(u)] == kInfDist) continue;
      const double via = weights[static_cast<size_t>(e)] +
                         sp.dist[static_cast<size_t>(u)];
      if (std::abs(via - sp.dist[static_cast<size_t>(v)]) <= kTol) {
        dag[static_cast<size_t>(v)].push_back(e);
      }
    }
  }
  return dag;
}

namespace {

double path_length(const DiGraph& g, const std::vector<NodeId>& path,
                   const std::vector<double>& weights) {
  double len = 0.0;
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const auto e = g.find_edge(path[i], path[i + 1]);
    assert(e.has_value());
    len += weights[static_cast<size_t>(*e)];
  }
  return len;
}

}  // namespace

std::vector<std::vector<NodeId>> k_shortest_paths(
    const DiGraph& g, NodeId src, NodeId dst,
    const std::vector<double>& weights, int k) {
  check_weights(g, weights);
  std::vector<std::vector<NodeId>> result;
  if (k <= 0) return result;
  {
    auto sp = dijkstra(g, src, weights);
    auto p = extract_path(g, sp, src, dst);
    if (p.empty()) return result;
    result.push_back(std::move(p));
  }
  // Yen's algorithm: candidate deviations from already-found paths.
  using Candidate = std::pair<double, std::vector<NodeId>>;
  auto cmp = [](const Candidate& a, const Candidate& b) {
    return a.first > b.first || (a.first == b.first && a.second > b.second);
  };
  std::priority_queue<Candidate, std::vector<Candidate>, decltype(cmp)>
      candidates(cmp);
  std::set<std::vector<NodeId>> seen{result[0]};

  while (static_cast<int>(result.size()) < k) {
    const std::vector<NodeId>& prev = result.back();
    for (size_t i = 0; i + 1 < prev.size(); ++i) {
      const NodeId spur = prev[i];
      const std::vector<NodeId> root(prev.begin(),
                                     prev.begin() + static_cast<long>(i) + 1);
      // Mask out edges that would recreate an already-found path with this
      // root, and nodes already on the root (loopless requirement).
      std::vector<bool> removed(static_cast<size_t>(g.num_edges()), false);
      for (const auto& found : result) {
        if (found.size() > i &&
            std::equal(root.begin(), root.end(), found.begin())) {
          if (const auto e = g.find_edge(found[i], found[i + 1])) {
            removed[static_cast<size_t>(*e)] = true;
          }
        }
      }
      std::vector<bool> node_blocked(static_cast<size_t>(g.num_nodes()),
                                     false);
      for (size_t j = 0; j < i; ++j) {
        node_blocked[static_cast<size_t>(root[j])] = true;
      }
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        const Edge& ed = g.edge(e);
        if (node_blocked[static_cast<size_t>(ed.src)] ||
            node_blocked[static_cast<size_t>(ed.dst)]) {
          removed[static_cast<size_t>(e)] = true;
        }
      }
      std::vector<double> masked = weights;
      for (EdgeId e = 0; e < g.num_edges(); ++e) {
        if (removed[static_cast<size_t>(e)]) {
          masked[static_cast<size_t>(e)] = kInfDist;
        }
      }
      // Dijkstra treats infinite weights as unusable edges.
      std::vector<double> usable = masked;
      for (double& w : usable) {
        if (w == kInfDist) w = 1e18;  // effectively unreachable
      }
      auto sp = dijkstra(g, spur, usable);
      auto spur_path = extract_path(g, sp, spur, dst);
      if (spur_path.empty() ||
          sp.dist[static_cast<size_t>(dst)] >= 1e17) {
        continue;
      }
      std::vector<NodeId> total(root.begin(), root.end() - 1);
      total.insert(total.end(), spur_path.begin(), spur_path.end());
      if (seen.insert(total).second) {
        candidates.emplace(path_length(g, total, weights), total);
      }
    }
    if (candidates.empty()) break;
    result.push_back(candidates.top().second);
    candidates.pop();
  }
  return result;
}

}  // namespace gddr::graph
