#include "graph/digraph.hpp"

#include <cassert>
#include <stdexcept>

namespace gddr::graph {

DiGraph::DiGraph(int num_nodes, std::string name)
    : out_edges_(static_cast<size_t>(num_nodes)),
      in_edges_(static_cast<size_t>(num_nodes)),
      name_(std::move(name)) {
  if (num_nodes < 0) throw std::invalid_argument("negative node count");
}

NodeId DiGraph::add_node() {
  out_edges_.emplace_back();
  in_edges_.emplace_back();
  return num_nodes() - 1;
}

EdgeId DiGraph::add_edge(NodeId u, NodeId v, double capacity) {
  if (!valid_node(u) || !valid_node(v)) {
    throw std::out_of_range("add_edge: invalid node id");
  }
  if (u == v) throw std::invalid_argument("add_edge: self-loop");
  if (capacity <= 0.0) throw std::invalid_argument("add_edge: capacity <= 0");
  const EdgeId id = num_edges();
  edges_.push_back(Edge{u, v, capacity});
  out_edges_[static_cast<size_t>(u)].push_back(id);
  in_edges_[static_cast<size_t>(v)].push_back(id);
  return id;
}

EdgeId DiGraph::add_bidirectional(NodeId u, NodeId v, double capacity) {
  const EdgeId first = add_edge(u, v, capacity);
  add_edge(v, u, capacity);
  return first;
}

std::optional<EdgeId> DiGraph::find_edge(NodeId u, NodeId v) const {
  if (!valid_node(u) || !valid_node(v)) return std::nullopt;
  for (EdgeId e : out_edges(u)) {
    if (edge(e).dst == v) return e;
  }
  return std::nullopt;
}

double DiGraph::total_capacity() const {
  double total = 0.0;
  for (const Edge& e : edges_) total += e.capacity;
  return total;
}

DiGraph DiGraph::without_edges(const std::vector<bool>& remove) const {
  assert(remove.size() == edges_.size());
  DiGraph g(num_nodes(), name_);
  for (EdgeId e = 0; e < num_edges(); ++e) {
    if (!remove[static_cast<size_t>(e)]) {
      const Edge& ed = edge(e);
      g.add_edge(ed.src, ed.dst, ed.capacity);
    }
  }
  return g;
}

DiGraph DiGraph::without_edge(EdgeId e) const {
  std::vector<bool> remove(static_cast<size_t>(num_edges()), false);
  remove.at(static_cast<size_t>(e)) = true;
  return without_edges(remove);
}

DiGraph DiGraph::without_node(NodeId v) const {
  if (!valid_node(v)) throw std::out_of_range("without_node: invalid node");
  DiGraph g(num_nodes() - 1, name_);
  auto remap = [v](NodeId n) { return n > v ? n - 1 : n; };
  for (const Edge& e : edges_) {
    if (e.src == v || e.dst == v) continue;
    g.add_edge(remap(e.src), remap(e.dst), e.capacity);
  }
  return g;
}

bool DiGraph::operator==(const DiGraph& other) const {
  if (num_nodes() != other.num_nodes() || num_edges() != other.num_edges()) {
    return false;
  }
  for (EdgeId e = 0; e < num_edges(); ++e) {
    const Edge& a = edge(e);
    const Edge& b = other.edge(e);
    if (a.src != b.src || a.dst != b.dst || a.capacity != b.capacity) {
      return false;
    }
  }
  return true;
}

}  // namespace gddr::graph
