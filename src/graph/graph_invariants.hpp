// Graph-layer invariant validators for the debug-contract layer
// (util/contract.hpp).  Always compiled; call sites gate invocation with
// GDDR_VALIDATE so Release builds pay nothing.  Each validator throws
// util::ContractViolation naming the label path and the offending values.
#pragma once

#include <string_view>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/digraph.hpp"

namespace gddr::graph {

// The subgraph of edges with edge_mask[e] == true must be acyclic.  The
// central post-pruning invariant: softmin routing is only loop-free
// because every pruned per-flow graph is a DAG.
void check_acyclic(const DiGraph& g, const std::vector<bool>& edge_mask,
                   std::string_view label);

// `order` must be a permutation of all nodes in which every masked edge
// points forward (Kahn output validity).  Flow simulation sweeps in this
// order; a violation would silently drop or double-count traffic.
void check_topological_order(const DiGraph& g,
                             const std::vector<bool>& edge_mask,
                             const std::vector<NodeId>& order,
                             std::string_view label);

// Structural integrity of a topology: every edge's endpoints are valid
// node ids, no self-loops, every capacity is positive and finite, and the
// out/in adjacency indexes agree with the edge list exactly.  DiGraph's
// constructors maintain all of this, so a violation means the graph
// reached this call through memory corruption or a hand-rolled decoder —
// the serving ingress runs it once per previously-unseen topology before
// trusting the graph with traffic.
void check_topology(const DiGraph& g, std::string_view label);

}  // namespace gddr::graph
