// Graph algorithms used throughout GDDR: weighted shortest paths (softmin
// routing distances, shortest-path baseline), traversal orders (flow
// simulation over per-flow DAGs), and connectivity checks (topology
// mutation must keep graphs strongly connected so every demand is
// routable).
#pragma once

#include <limits>
#include <optional>
#include <vector>

#include "graph/digraph.hpp"

namespace gddr::graph {

inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

// Result of a single-source shortest-path computation.
struct ShortestPaths {
  // dist[v]: distance from the source (or to the sink for the reverse
  // variant); kInfDist if unreachable.
  std::vector<double> dist;
  // parent_edge[v]: one edge on a shortest path toward v (kInvalidEdge for
  // the source / unreachable nodes).
  std::vector<EdgeId> parent_edge;
};

// Dijkstra from `src` using per-edge weights (size num_edges, all >= 0).
ShortestPaths dijkstra(const DiGraph& g, NodeId src,
                       const std::vector<double>& weights);

// Dijkstra on the reverse graph: dist[v] is the weighted distance from v to
// `dst`; parent_edge[v] is the first edge of a shortest v->dst path.
ShortestPaths dijkstra_to(const DiGraph& g, NodeId dst,
                          const std::vector<double>& weights);

// Unit weights (hop count) convenience.
std::vector<double> unit_weights(const DiGraph& g);

// Reconstructs the node sequence src..dst from a `dijkstra(g, src, ...)`
// result; empty if unreachable.
std::vector<NodeId> extract_path(const DiGraph& g, const ShortestPaths& sp,
                                 NodeId src, NodeId dst);

// Kahn topological order over the subgraph of edges where mask[e] is true.
// Returns nullopt if that subgraph has a cycle.
std::optional<std::vector<NodeId>> topological_order(
    const DiGraph& g, const std::vector<bool>& edge_mask);

// True if the masked subgraph contains a directed cycle.
bool has_cycle(const DiGraph& g, const std::vector<bool>& edge_mask);

// True if every node can reach every other node.
bool is_strongly_connected(const DiGraph& g);

// All-pairs shortest-path distances by repeated Dijkstra.
// result[s][t] = distance s -> t.
std::vector<std::vector<double>> all_pairs_distances(
    const DiGraph& g, const std::vector<double>& weights);

// For each node v, the outgoing edges of v that lie on *some* shortest
// path from v to `dst` (the ECMP DAG toward dst).  Empty set at `dst` and
// at nodes that cannot reach `dst`.
std::vector<std::vector<EdgeId>> shortest_path_dag_to(
    const DiGraph& g, NodeId dst, const std::vector<double>& weights);

// K shortest loopless paths src -> dst (Yen's algorithm); each path is a
// node sequence.  Used by the uniform-multipath baseline.
std::vector<std::vector<NodeId>> k_shortest_paths(
    const DiGraph& g, NodeId src, NodeId dst,
    const std::vector<double>& weights, int k);

}  // namespace gddr::graph
