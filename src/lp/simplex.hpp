// Dense two-phase primal simplex linear-programming solver.
//
// The paper computes the optimal max-link-utilisation with Google
// OR-Tools' LP solver (§V-A); this module is the from-scratch replacement.
// It solves
//
//     minimise    c . x
//     subject to  A x {<=, =, >=} b,    x >= 0
//
// via the textbook two-phase method on a dense tableau: phase 1 minimises
// the sum of artificial variables to find a basic feasible solution, phase 2
// optimises the real objective.  Dantzig pricing is used with an automatic
// switch to Bland's rule when progress stalls, which guarantees
// termination.  Problem sizes in this repository (destination-aggregated
// multicommodity flow on Topology-Zoo-scale graphs) stay well inside what a
// dense tableau handles comfortably.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace gddr::lp {

enum class Relation { kLe, kEq, kGe };

enum class SolveStatus { kOptimal, kInfeasible, kUnbounded, kIterationLimit };

struct Solution {
  SolveStatus status = SolveStatus::kIterationLimit;
  double objective = 0.0;
  // Values of the original variables (empty unless kOptimal).
  std::vector<double> x;
};

std::string to_string(SolveStatus status);

class LinearProgram {
 public:
  // Adds a variable with the given objective coefficient (x_i >= 0
  // implicitly); returns its index.
  int add_variable(double objective_coeff);

  int num_variables() const { return static_cast<int>(objective_.size()); }
  int num_constraints() const { return static_cast<int>(rows_.size()); }

  // Adds the constraint  sum_j terms[j].second * x_{terms[j].first}  rel  rhs.
  // Variable indices must already exist.  Duplicate indices in one
  // constraint are summed.
  void add_constraint(const std::vector<std::pair<int, double>>& terms,
                      Relation rel, double rhs);

  struct Options {
    // 0 = choose automatically from problem size.
    std::size_t max_iterations = 0;
    double pivot_tolerance = 1e-9;
    double feasibility_tolerance = 1e-7;
    // Anti-cycling: after this many consecutive pivots without objective
    // improvement (degenerate pivots), pricing falls back to Bland's rule
    // — smallest-index entering column plus the smallest-basis-index
    // ratio-test tie-break — which provably cannot cycle.  Dantzig
    // pricing resumes once the objective strictly improves.  Must be > 0;
    // pathological degenerate LPs (which parallel evaluation can hit on
    // arbitrary generated scenarios) terminate instead of looping.
    std::size_t degenerate_pivot_limit = 64;
  };

  Solution solve(const Options& options) const;
  Solution solve() const { return solve(Options{}); }

 private:
  struct Row {
    std::vector<std::pair<int, double>> terms;
    Relation rel;
    double rhs;
  };

  std::vector<double> objective_;
  std::vector<Row> rows_;
};

}  // namespace gddr::lp
