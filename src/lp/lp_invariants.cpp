#include "lp/lp_invariants.hpp"

#include "util/contract.hpp"

namespace gddr::lp {

using util::contract::describe;
using util::contract::violate_invariant;

void check_basis(const std::vector<int>& basis, std::size_t total_cols,
                 std::string_view label) {
  std::vector<bool> seen(total_cols, false);
  for (std::size_t r = 0; r < basis.size(); ++r) {
    const int c = basis[r];
    if (c < 0 || static_cast<std::size_t>(c) >= total_cols) {
      violate_invariant("basis column inside [0, total_cols)", label,
                        describe("row", r, "column", c, "total_cols",
                                 total_cols));
    }
    if (seen[static_cast<std::size_t>(c)]) {
      violate_invariant("no column basic in two rows", label,
                        describe("row", r, "column", c));
    }
    seen[static_cast<std::size_t>(c)] = true;
  }
}

void check_rhs_nonnegative(std::span<const double> rhs, double tol,
                           std::string_view label) {
  for (std::size_t r = 0; r < rhs.size(); ++r) {
    if (rhs[r] < -tol) {
      violate_invariant("basic solution non-negative", label,
                        describe("row", r, "rhs", rhs[r], "tol", tol));
    }
  }
}

void check_pivot_bound(std::size_t pivots, std::size_t bound,
                       std::string_view label) {
  if (pivots > bound) {
    violate_invariant("pivot count within the iteration budget", label,
                      describe("pivots", pivots, "bound", bound));
  }
}

}  // namespace gddr::lp
