#include "lp/simplex.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "lp/lp_invariants.hpp"
#include "obs/metrics.hpp"
#include "util/contract.hpp"

namespace gddr::lp {

std::string to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration-limit";
  }
  return "unknown";
}

int LinearProgram::add_variable(double objective_coeff) {
  objective_.push_back(objective_coeff);
  return num_variables() - 1;
}

void LinearProgram::add_constraint(
    const std::vector<std::pair<int, double>>& terms, Relation rel,
    double rhs) {
  for (const auto& [idx, coeff] : terms) {
    (void)coeff;
    if (idx < 0 || idx >= num_variables()) {
      throw std::out_of_range("add_constraint: unknown variable index");
    }
  }
  rows_.push_back(Row{terms, rel, rhs});
}

namespace {

// Dense tableau with an attached cost row; column layout is
// [structural | slack/surplus | artificial | rhs].
class Tableau {
 public:
  Tableau(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  // Gaussian pivot on (pr, pc): pivot row scaled to make the pivot 1, the
  // pivot column eliminated from every other row including the cost row.
  void pivot(std::size_t pr, std::size_t pc) {
    double* prow = &data_[pr * cols_];
    const double inv = 1.0 / prow[pc];
    for (std::size_t c = 0; c < cols_; ++c) prow[c] *= inv;
    prow[pc] = 1.0;
    for (std::size_t r = 0; r < rows_; ++r) {
      if (r == pr) continue;
      double* row = &data_[r * cols_];
      const double factor = row[pc];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < cols_; ++c) row[c] -= factor * prow[c];
      row[pc] = 0.0;
    }
  }

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

struct SimplexState {
  Tableau tableau;
  std::vector<int> basis;       // basis[r] = column basic in row r
  std::size_t m;                // constraint rows
  std::size_t total_cols;      // structural + slack + artificial
  std::size_t rhs_col;
  std::size_t cost_row;
  std::size_t artificial_begin;  // first artificial column
  std::size_t pivots = 0;        // total pivots across both phases
};

// Flushes the pivot count to the metrics registry on every exit path of
// solve() (optimal, infeasible, unbounded, iteration limit alike).
struct PivotRecorder {
  const SimplexState& s;
  ~PivotRecorder() {
    if (!obs::enabled()) return;
    obs::count("lp/solves");
    obs::count("lp/pivots", s.pivots);
    obs::observe("lp/pivots_per_solve", static_cast<double>(s.pivots));
  }
};

enum class IterateResult { kOptimal, kUnbounded, kIterationLimit };

// Runs simplex iterations on the current cost row.  Columns >= col_limit
// are never allowed to enter the basis (used to freeze artificials in
// phase 2).
IterateResult iterate(SimplexState& s, std::size_t col_limit,
                      const LinearProgram::Options& options,
                      std::size_t max_iterations) {
  const double pivot_tol = options.pivot_tolerance;
  const std::size_t degenerate_limit =
      options.degenerate_pivot_limit > 0 ? options.degenerate_pivot_limit
                                         : 1;
  std::size_t degenerate = 0;
  double last_objective = std::numeric_limits<double>::infinity();
  bool bland = false;
  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    // --- entering column ---
    std::size_t entering = s.total_cols;  // sentinel: none
    if (bland) {
      for (std::size_t c = 0; c < col_limit; ++c) {
        if (s.tableau.at(s.cost_row, c) < -pivot_tol) {
          entering = c;
          break;
        }
      }
    } else {
      double best = -pivot_tol;
      for (std::size_t c = 0; c < col_limit; ++c) {
        const double rc = s.tableau.at(s.cost_row, c);
        if (rc < best) {
          best = rc;
          entering = c;
        }
      }
    }
    if (entering == s.total_cols) return IterateResult::kOptimal;

    // --- ratio test ---
    std::size_t leaving_row = s.m;  // sentinel: none
    double best_ratio = std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < s.m; ++r) {
      const double a = s.tableau.at(r, entering);
      if (a > pivot_tol) {
        const double ratio = s.tableau.at(r, s.rhs_col) / a;
        if (ratio < best_ratio - 1e-12 ||
            (ratio < best_ratio + 1e-12 &&
             (leaving_row == s.m ||
              s.basis[r] < s.basis[leaving_row]))) {
          best_ratio = ratio;
          leaving_row = r;
        }
      }
    }
    if (leaving_row == s.m) return IterateResult::kUnbounded;

    s.tableau.pivot(leaving_row, entering);
    s.basis[leaving_row] = static_cast<int>(entering);
    ++s.pivots;

    // --- anti-cycling ---
    // A pivot that fails to strictly improve the objective is degenerate;
    // a bounded run of them flips pricing to Bland's rule (the entering
    // selection above plus the smallest-basis-index ratio tie-break),
    // under which the simplex provably cannot revisit a basis.  Bland
    // stays engaged until the objective strictly improves again, so a
    // cycle cannot re-form by bouncing between pricing rules.
    const double objective = -s.tableau.at(s.cost_row, s.rhs_col);
    if (objective < last_objective - 1e-12) {
      degenerate = 0;
      bland = false;
    } else if (++degenerate >= degenerate_limit) {
      bland = true;
    }
    last_objective = objective;
  }
  return IterateResult::kIterationLimit;
}

// Loads `costs` (indexed over all columns except rhs) into the cost row and
// prices out the current basic variables so reduced costs are consistent.
void install_costs(SimplexState& s, const std::vector<double>& costs) {
  for (std::size_t c = 0; c < s.total_cols; ++c) {
    s.tableau.at(s.cost_row, c) = costs[c];
  }
  s.tableau.at(s.cost_row, s.rhs_col) = 0.0;
  for (std::size_t r = 0; r < s.m; ++r) {
    const auto bc = static_cast<std::size_t>(s.basis[r]);
    const double cost = costs[bc];
    if (cost == 0.0) continue;
    for (std::size_t c = 0; c <= s.rhs_col; ++c) {
      s.tableau.at(s.cost_row, c) -= cost * s.tableau.at(r, c);
    }
  }
}

}  // namespace

Solution LinearProgram::solve(const Options& options) const {
  const auto n = static_cast<std::size_t>(num_variables());
  const auto m = static_cast<std::size_t>(num_constraints());

  // Count auxiliary columns.  RHS is normalised to >= 0 first (flip the
  // relation when multiplying a row by -1).
  std::vector<Relation> rel(m);
  std::vector<double> rhs(m);
  std::vector<std::vector<std::pair<int, double>>> terms(m);
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  for (std::size_t r = 0; r < m; ++r) {
    const Row& row = rows_[r];
    rel[r] = row.rel;
    rhs[r] = row.rhs;
    terms[r] = row.terms;
    if (rhs[r] < 0.0) {
      rhs[r] = -rhs[r];
      for (auto& [idx, coeff] : terms[r]) {
        (void)idx;
        coeff = -coeff;
      }
      if (rel[r] == Relation::kLe) {
        rel[r] = Relation::kGe;
      } else if (rel[r] == Relation::kGe) {
        rel[r] = Relation::kLe;
      }
    }
    switch (rel[r]) {
      case Relation::kLe:
        ++num_slack;
        break;
      case Relation::kGe:
        ++num_slack;  // surplus
        ++num_artificial;
        break;
      case Relation::kEq:
        ++num_artificial;
        break;
    }
  }

  const std::size_t total_cols = n + num_slack + num_artificial;
  const std::size_t rhs_col = total_cols;
  SimplexState s{Tableau(m + 1, total_cols + 1),
                 std::vector<int>(m, -1),
                 m,
                 total_cols,
                 rhs_col,
                 /*cost_row=*/m,
                 /*artificial_begin=*/n + num_slack};
  const PivotRecorder recorder{s};
  obs::ScopedTimer solve_timer("lp/solve");

  // Fill constraint rows.
  std::size_t slack_cursor = n;
  std::size_t artificial_cursor = n + num_slack;
  for (std::size_t r = 0; r < m; ++r) {
    for (const auto& [idx, coeff] : terms[r]) {
      s.tableau.at(r, static_cast<std::size_t>(idx)) += coeff;
    }
    s.tableau.at(r, rhs_col) = rhs[r];
    switch (rel[r]) {
      case Relation::kLe:
        s.tableau.at(r, slack_cursor) = 1.0;
        s.basis[r] = static_cast<int>(slack_cursor);
        ++slack_cursor;
        break;
      case Relation::kGe:
        s.tableau.at(r, slack_cursor) = -1.0;
        ++slack_cursor;
        s.tableau.at(r, artificial_cursor) = 1.0;
        s.basis[r] = static_cast<int>(artificial_cursor);
        ++artificial_cursor;
        break;
      case Relation::kEq:
        s.tableau.at(r, artificial_cursor) = 1.0;
        s.basis[r] = static_cast<int>(artificial_cursor);
        ++artificial_cursor;
        break;
    }
  }

  const std::size_t max_iters =
      options.max_iterations > 0
          ? options.max_iterations
          : 200 * (m + total_cols) + 10000;

  // Initial basis: one slack/artificial column per row, all distinct.
  GDDR_VALIDATE(check_basis(s.basis, total_cols, "lp/setup/basis"));

  Solution solution;

  // --- Phase 1: minimise the sum of artificials ---
  if (num_artificial > 0) {
    std::vector<double> phase1_costs(total_cols, 0.0);
    for (std::size_t c = s.artificial_begin; c < total_cols; ++c) {
      phase1_costs[c] = 1.0;
    }
    install_costs(s, phase1_costs);
    const IterateResult r1 = iterate(s, total_cols, options, max_iters);
    if (r1 == IterateResult::kIterationLimit) {
      solution.status = SolveStatus::kIterationLimit;
      return solution;
    }
    const double phase1_obj = -s.tableau.at(s.cost_row, rhs_col);
    if (phase1_obj > options.feasibility_tolerance) {
      solution.status = SolveStatus::kInfeasible;
      return solution;
    }
    // Drive any artificial still basic (at value ~0) out of the basis if a
    // usable pivot exists; otherwise the row is redundant and harmless.
    for (std::size_t r = 0; r < m; ++r) {
      if (static_cast<std::size_t>(s.basis[r]) < s.artificial_begin) continue;
      for (std::size_t c = 0; c < s.artificial_begin; ++c) {
        if (std::abs(s.tableau.at(r, c)) > options.pivot_tolerance) {
          s.tableau.pivot(r, c);
          s.basis[r] = static_cast<int>(c);
          ++s.pivots;
          break;
        }
      }
    }
    // Phase 1 ended on a feasible basis: the basis must still be valid and
    // every basic value (the RHS column) non-negative within tolerance.
    GDDR_VALIDATE([&] {
      check_basis(s.basis, total_cols, "lp/phase1/basis");
      std::vector<double> basic_values(m);
      for (std::size_t r = 0; r < m; ++r) {
        basic_values[r] = s.tableau.at(r, rhs_col);
      }
      check_rhs_nonnegative(basic_values, options.feasibility_tolerance,
                            "lp/phase1/rhs");
    }());
  }

  // --- Phase 2: minimise the real objective; artificials may not enter ---
  std::vector<double> phase2_costs(total_cols, 0.0);
  for (std::size_t c = 0; c < n; ++c) phase2_costs[c] = objective_[c];
  install_costs(s, phase2_costs);
  const IterateResult r2 = iterate(s, s.artificial_begin, options, max_iters);
  if (r2 == IterateResult::kUnbounded) {
    solution.status = SolveStatus::kUnbounded;
    return solution;
  }
  if (r2 == IterateResult::kIterationLimit) {
    solution.status = SolveStatus::kIterationLimit;
    return solution;
  }

  // Optimum reached: basis still valid, and the total pivot count stayed
  // inside the two phase budgets plus the <= m drive-out pivots.
  GDDR_VALIDATE([&] {
    check_basis(s.basis, total_cols, "lp/phase2/basis");
    check_pivot_bound(s.pivots, 2 * max_iters + m, "lp/solve/pivots");
  }());

  solution.status = SolveStatus::kOptimal;
  solution.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const auto bc = static_cast<std::size_t>(s.basis[r]);
    if (bc < n) solution.x[bc] = s.tableau.at(r, rhs_col);
  }
  solution.objective = 0.0;
  for (std::size_t c = 0; c < n; ++c) {
    solution.objective += objective_[c] * solution.x[c];
  }
  return solution;
}

}  // namespace gddr::lp
