// Simplex-tableau invariant validators for the debug-contract layer
// (util/contract.hpp).  solve() calls these through GDDR_VALIDATE at the
// phase boundaries; tests call them directly with deliberately broken
// state.  Each throws util::ContractViolation on failure.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

namespace gddr::lp {

// Basis validity: exactly one basic column per constraint row, every
// basis index inside [0, total_cols), no column basic in two rows.
void check_basis(const std::vector<int>& basis, std::size_t total_cols,
                 std::string_view label);

// Non-negativity of the RHS column within `tol`: after phase 1 every basic
// variable's value is the RHS entry of its row, and a negative value means
// the "feasible" basis is not actually feasible.
void check_rhs_nonnegative(std::span<const double> rhs, double tol,
                           std::string_view label);

// Bounded pivot count: the solver must never exceed its own iteration
// budget (anti-cycling guarantees termination inside it).
void check_pivot_bound(std::size_t pivots, std::size_t bound,
                       std::string_view label);

}  // namespace gddr::lp
