#include "mcf/mcf_invariants.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"

namespace gddr::mcf {

using graph::EdgeId;
using graph::NodeId;
using util::contract::describe;
using util::contract::violate_invariant;

void check_flow_conservation(const graph::DiGraph& g,
                             const traffic::DemandMatrix& dm,
                             const OptimalResult& result, double tol,
                             std::string_view label) {
  if (result.provenance != SolveProvenance::kExact) return;
  for (NodeId t = 0; t < g.num_nodes(); ++t) {
    const auto& row = result.flow_by_dest[static_cast<std::size_t>(t)];
    if (row.empty()) continue;
    const double total = dm.in_sum(t);
    // Tolerance scales with the commodity size so huge demand matrices do
    // not trip on honest LP rounding.
    const double slack = tol * std::max(1.0, total);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      double net_out = 0.0;
      for (EdgeId e : g.out_edges(v)) net_out += row[static_cast<size_t>(e)];
      for (EdgeId e : g.in_edges(v)) net_out -= row[static_cast<size_t>(e)];
      const double expected = (v == t) ? -total : dm.at(v, t);
      if (std::abs(net_out - expected) > slack) {
        violate_invariant("flow conservation at every node", label,
                          describe("dest", t, "node", v, "net_out", net_out,
                                   "expected", expected, "tol", slack));
      }
    }
  }
}

void check_umax_consistency(const graph::DiGraph& g,
                            const OptimalResult& result, double tol,
                            std::string_view label) {
  if (!result.feasible) return;
  if (!std::isfinite(result.u_max) || result.u_max < 0.0) {
    violate_invariant("U_max finite and non-negative", label,
                      describe("u_max", result.u_max));
  }
  // An exact result carries its flow decomposition; the reported U_max
  // must equal the busiest edge of those flows.  The FPTAS path returns no
  // flows, but any partial rows present must still never exceed U_max.
  double flow_u_max = 0.0;
  bool has_flows = false;
  for (const auto& row : result.flow_by_dest) has_flows |= !row.empty();
  if (!has_flows) return;
  const auto util = edge_utilisation(g, result);
  for (const double u : util) flow_u_max = std::max(flow_u_max, u);
  const bool exact = result.provenance == SolveProvenance::kExact;
  const bool consistent = exact
                              ? std::abs(flow_u_max - result.u_max) <= tol
                              : flow_u_max <= result.u_max + tol;
  if (!consistent) {
    violate_invariant("U_max matches the flow decomposition", label,
                      describe("u_max", result.u_max, "flow_u_max",
                               flow_u_max, "provenance",
                               to_string(result.provenance), "tol", tol));
  }
}

}  // namespace gddr::mcf
