// Exact oracle for the *mean*-utilisation objective (paper §IX lists
// "different utility functions" as further work; this implements the most
// natural alternative to min-max).
//
// Minimising sum_e load(e)/c(e) decomposes per unit of traffic: each unit
// travelling edge e contributes 1/c(e) regardless of everything else, so
// the optimum routes every demand along its shortest path under edge
// weights 1/c(e) — no LP needed.  (Unlike min-max, the mean objective has
// no coupling between commodities.)  The routing achieving the optimum is
// routing::min_mean_utilisation_routing.
#pragma once

#include "graph/digraph.hpp"
#include "traffic/demand.hpp"

namespace gddr::mcf {

// Minimum achievable mean link utilisation (sum over edges of
// load/capacity, divided by |E|) for the given demands.
double min_mean_utilisation(const graph::DiGraph& g,
                            const traffic::DemandMatrix& dm);

}  // namespace gddr::mcf
