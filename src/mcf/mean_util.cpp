#include "mcf/mean_util.hpp"

#include <stdexcept>

#include "graph/algorithms.hpp"

namespace gddr::mcf {

double min_mean_utilisation(const graph::DiGraph& g,
                            const traffic::DemandMatrix& dm) {
  if (dm.num_nodes() != g.num_nodes()) {
    throw std::invalid_argument("min_mean_utilisation: size mismatch");
  }
  if (g.num_edges() == 0) return 0.0;
  std::vector<double> w(static_cast<size_t>(g.num_edges()));
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    w[static_cast<size_t>(e)] = 1.0 / g.edge(e).capacity;
  }
  // Each unit of demand s->t contributes dist_{1/c}(s,t) to the total
  // utilisation sum; sum and divide by |E|.
  double total = 0.0;
  for (graph::NodeId s = 0; s < g.num_nodes(); ++s) {
    if (dm.out_sum(s) <= 0.0) continue;
    const auto sp = graph::dijkstra(g, s, w);
    for (graph::NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s == t) continue;
      const double d = dm.at(s, t);
      if (d <= 0.0) continue;
      const double dist = sp.dist[static_cast<size_t>(t)];
      if (dist == graph::kInfDist) {
        throw std::invalid_argument(
            "min_mean_utilisation: demand pair unreachable");
      }
      total += d * dist;
    }
  }
  return total / static_cast<double>(g.num_edges());
}

}  // namespace gddr::mcf
