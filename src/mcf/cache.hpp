// Memoised optimal-congestion oracle.
//
// The paper notes training is CPU-bound on the LP step; since cyclical
// demand sequences repeat a small base cycle of matrices, caching
// U*_max by (graph, demand-matrix) content hash removes nearly all LP
// solves after the first episode.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "graph/digraph.hpp"
#include "traffic/demand.hpp"

namespace gddr::mcf {

// FNV-1a content hash of a graph's structure and capacities.
std::uint64_t graph_fingerprint(const graph::DiGraph& g);

// FNV-1a content hash of a demand matrix.
std::uint64_t demand_fingerprint(const traffic::DemandMatrix& dm);

class OptimalCache {
 public:
  // Optimal U_max for (g, dm), computed on first use via solve_optimal.
  // Throws std::runtime_error if the LP is not solvable (cannot happen for
  // strongly connected graphs with finite demands).
  double u_max(const graph::DiGraph& g, const traffic::DemandMatrix& dm);

  // Optimal *mean* link utilisation for (g, dm) (see mcf/mean_util.hpp),
  // memoised the same way.
  double mean_util(const graph::DiGraph& g, const traffic::DemandMatrix& dm);

  std::size_t size() const { return cache_.size() + mean_cache_.size(); }
  std::size_t hits() const { return hits_; }
  std::size_t misses() const { return misses_; }
  void clear();

 private:
  std::uint64_t key_for(const graph::DiGraph& g,
                        const traffic::DemandMatrix& dm) const;

  std::unordered_map<std::uint64_t, double> cache_;
  std::unordered_map<std::uint64_t, double> mean_cache_;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace gddr::mcf
