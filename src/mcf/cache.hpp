// Memoised optimal-congestion oracle.
//
// The paper notes training is CPU-bound on the LP step; since cyclical
// demand sequences repeat a small base cycle of matrices, caching
// U*_max by (graph, demand-matrix) content hash removes nearly all LP
// solves after the first episode.
//
// The cache is bounded (LRU eviction at `capacity` entries per map) so a
// long multi-topology experiment cannot grow it without limit, and
// thread-safe: lookups/insertions take an internal mutex while LP solves
// run *outside* the lock, so concurrent evaluation workers only serialise
// on the (cheap) map operations.  Two workers racing on the same missing
// key may both solve it; the solver is deterministic, so both arrive at
// the same value and the duplicate insert is a no-op — results never
// depend on thread timing.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>

#include "graph/digraph.hpp"
#include "traffic/demand.hpp"
#include "util/sync.hpp"

namespace gddr::mcf {

// FNV-1a content hash of a graph's structure and capacities.
//
// Guarantee: this is a *representation* hash, not an isomorphism hash.
// It digests (num_nodes, then every edge's (src, dst, capacity) in
// storage order), so two DiGraphs hash equal iff they were built with
// the same node count and the same edge sequence (up to the usual
// 64-bit collision odds).  Consequences callers must not be surprised
// by:
//  * Edge order matters: removing an edge and re-adding it appends it
//    at the end of the edge list, so the "same" topology hashes
//    differently from the original.  (operator== has the same
//    order-sensitivity, so fingerprint-equal still tracks graph-equal.)
//  * Node removal compacts ids: DiGraph::without_node renumbers the
//    surviving nodes, so a compacted graph *aliases* a natively built
//    graph with those nodes/edges — deliberately, because after
//    compaction they are the same representation.  Callers tracking
//    topology *identity across mutations* (rather than current
//    structure) must carry their own epoch alongside the fingerprint.
std::uint64_t graph_fingerprint(const graph::DiGraph& g);

// FNV-1a content hash of a demand matrix.
std::uint64_t demand_fingerprint(const traffic::DemandMatrix& dm);

class OptimalCache {
 public:
  // Default capacity comfortably holds every distinct (graph, DM) pair of
  // the paper-scale experiments (hundreds per scenario) while bounding a
  // production-length run to a few MB per map.
  static constexpr std::size_t kDefaultCapacity = 1 << 16;

  explicit OptimalCache(std::size_t capacity = kDefaultCapacity);

  // Copying shares no state; each copy starts from the source's entries.
  OptimalCache(const OptimalCache& other);
  // The thread-safety analysis is disabled here: the function-local copy
  // it reads from is unshared by construction, and locking its mutex as
  // well would trip the rank detector (two kOptimalCache locks).
  OptimalCache& operator=(const OptimalCache& other)
      GDDR_NO_THREAD_SAFETY_ANALYSIS;

  // Optimal U_max for (g, dm), computed on first use via solve_optimal.
  // A simplex breakdown degrades to the FPTAS (see mcf::SolveOptions)
  // rather than aborting; only a kFailed result — unroutable demand —
  // throws util::SolverError (a std::runtime_error; cannot happen for
  // strongly connected graphs with finite demands).
  double u_max(const graph::DiGraph& g, const traffic::DemandMatrix& dm);

  // Optimal *mean* link utilisation for (g, dm) (see mcf/mean_util.hpp),
  // memoised the same way.
  double mean_util(const graph::DiGraph& g, const traffic::DemandMatrix& dm);

  // Entry cap per map (u_max and mean_util are bounded independently).
  std::size_t capacity() const { return capacity_; }

  std::size_t size() const;
  std::size_t hits() const;
  std::size_t misses() const;
  std::size_t evictions() const;
  // Provenance of the u_max solves performed on cache misses: how many
  // came back exact (simplex) vs approximate (FPTAS fallback).  A nonzero
  // approximate count means some cached optima carry the FPTAS ε-bound.
  std::size_t exact_solves() const;
  std::size_t approx_solves() const;
  void clear();

 private:
  // One LRU map: unordered_map for O(1) lookup, intrusive recency list
  // for O(1) touch/evict.
  struct LruMap {
    struct Entry {
      double value = 0.0;
      std::list<std::uint64_t>::iterator recency;
    };
    std::unordered_map<std::uint64_t, Entry> map;
    std::list<std::uint64_t> order;  // front = most recently used
  };

  std::uint64_t key_for(const graph::DiGraph& g,
                        const traffic::DemandMatrix& dm) const;

  // Selects one of the two independently bounded LRU maps.  Passing the
  // map itself by reference would hand out an unchecked alias to a
  // guarded member (clang's -Wthread-safety-reference rejects it), so the
  // helpers take this tag and resolve it under the lock instead.
  enum class Which { kUmax, kMeanUtil };

  LruMap& lru_locked(Which which) GDDR_REQUIRES(mutex_) {
    return which == Which::kUmax ? cache_ : mean_cache_;
  }

  // Returns true and fills `value` on a hit (refreshing recency).
  bool lookup(Which which, std::uint64_t key, double& value)
      GDDR_EXCLUDES(mutex_);
  // Inserts (evicting the LRU entry when at capacity); idempotent.
  void insert(Which which, std::uint64_t key, double value)
      GDDR_EXCLUDES(mutex_);

  template <typename Solver>
  double lookup_or_solve(Which which, const graph::DiGraph& g,
                         const traffic::DemandMatrix& dm,
                         const Solver& solver);

  std::size_t capacity_;
  mutable util::Mutex mutex_{util::LockRank::kOptimalCache,
                             "mcf/optimal_cache"};
  LruMap cache_ GDDR_GUARDED_BY(mutex_);
  LruMap mean_cache_ GDDR_GUARDED_BY(mutex_);
  std::size_t hits_ GDDR_GUARDED_BY(mutex_) = 0;
  std::size_t misses_ GDDR_GUARDED_BY(mutex_) = 0;
  std::size_t evictions_ GDDR_GUARDED_BY(mutex_) = 0;
  std::size_t exact_solves_ GDDR_GUARDED_BY(mutex_) = 0;
  std::size_t approx_solves_ GDDR_GUARDED_BY(mutex_) = 0;
};

}  // namespace gddr::mcf
