// Optimal multicommodity-flow congestion (paper §II-A, §V-A).
//
// The reward in the GDDR environment compares the agent's max link
// utilisation against the optimum U*_max achievable by any splittable
// routing of the demand matrix.  The paper computes U*_max with an LP on
// top of Google OR-Tools; here the LP is built on src/lp's simplex.
//
// Two formulations are provided:
//
//  * solve_optimal: destination-aggregated.  For each destination t a flow
//    variable x_t(e) carries *all* traffic destined to t on edge e; per-node
//    conservation injects D[v][t] at every v != t.  This is exact for
//    splittable min-max-utilisation MCF (commodities to the same sink can
//    be merged without changing link totals, and any merged flow can be
//    decomposed back per-source) and has |V||E| variables instead of
//    |V|^2|E|.
//
//  * solve_optimal_per_commodity: the textbook per-(s,t) formulation from
//    the paper's §II-A, exponentially larger; used in tests to validate the
//    aggregated formulation.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "traffic/demand.hpp"

namespace gddr::mcf {

// How a result was obtained — part of the solver fallback chain.  A
// simplex failure (iteration budget, numerical stall, injected fault) no
// longer aborts an experiment: solve_optimal degrades to the Fleischer
// FPTAS and tags the result so callers can distinguish an exact optimum
// from an approximation instead of receiving an exception.
enum class SolveProvenance {
  kExact,        // simplex reached a proven optimum
  kApproximate,  // FPTAS fallback; u_max within its (1 - 3eps) guarantee
  kFailed,       // neither solver produced a usable value
};

const char* to_string(SolveProvenance provenance);

struct SolveOptions {
  // Simplex iteration budget (0 = automatic from problem size).  When the
  // budget is exhausted the fallback chain engages.
  std::size_t max_simplex_iterations = 0;
  // Disable to make solve_optimal exact-only (callers that need
  // flow_by_dest, which the FPTAS cannot provide).
  bool allow_fptas_fallback = true;
  // Approximation parameter of the fallback (see mcf/fptas.hpp).
  double fptas_epsilon = 0.05;
};

struct OptimalResult {
  bool feasible = false;  // provenance != kFailed
  SolveProvenance provenance = SolveProvenance::kFailed;
  // Optimal max link utilisation; may exceed 1 when demand exceeds what
  // the network can carry without over-subscription.  Under kApproximate
  // provenance it lies in [U*, U* / (1 - 3*fptas_epsilon)].
  double u_max = 0.0;
  // flow_by_dest[t][e]: traffic destined to node t crossing edge e in the
  // optimal solution.  Destinations with zero demand have empty rows.
  // Empty under kApproximate provenance (the FPTAS yields only the value).
  std::vector<std::vector<double>> flow_by_dest;
};

// Destination-aggregated optimal congestion LP with FPTAS fallback.
// A genuinely infeasible LP (unroutable demand) is kFailed — no
// approximation can route it either.
OptimalResult solve_optimal(const graph::DiGraph& g,
                            const traffic::DemandMatrix& dm,
                            const SolveOptions& options = {});

// Per-commodity formulation (paper §II-A); test/cross-check use only.
// Returns the optimal U_max.
double solve_optimal_per_commodity(const graph::DiGraph& g,
                                   const traffic::DemandMatrix& dm);

// Per-edge utilisation of the optimal solution (|E| entries).
std::vector<double> edge_utilisation(const graph::DiGraph& g,
                                     const OptimalResult& result);

}  // namespace gddr::mcf
