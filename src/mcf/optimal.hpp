// Optimal multicommodity-flow congestion (paper §II-A, §V-A).
//
// The reward in the GDDR environment compares the agent's max link
// utilisation against the optimum U*_max achievable by any splittable
// routing of the demand matrix.  The paper computes U*_max with an LP on
// top of Google OR-Tools; here the LP is built on src/lp's simplex.
//
// Two formulations are provided:
//
//  * solve_optimal: destination-aggregated.  For each destination t a flow
//    variable x_t(e) carries *all* traffic destined to t on edge e; per-node
//    conservation injects D[v][t] at every v != t.  This is exact for
//    splittable min-max-utilisation MCF (commodities to the same sink can
//    be merged without changing link totals, and any merged flow can be
//    decomposed back per-source) and has |V||E| variables instead of
//    |V|^2|E|.
//
//  * solve_optimal_per_commodity: the textbook per-(s,t) formulation from
//    the paper's §II-A, exponentially larger; used in tests to validate the
//    aggregated formulation.
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "traffic/demand.hpp"

namespace gddr::mcf {

struct OptimalResult {
  bool feasible = false;
  // Optimal max link utilisation; may exceed 1 when demand exceeds what
  // the network can carry without over-subscription.
  double u_max = 0.0;
  // flow_by_dest[t][e]: traffic destined to node t crossing edge e in the
  // optimal solution.  Destinations with zero demand have empty rows.
  std::vector<std::vector<double>> flow_by_dest;
};

// Destination-aggregated optimal congestion LP.
OptimalResult solve_optimal(const graph::DiGraph& g,
                            const traffic::DemandMatrix& dm);

// Per-commodity formulation (paper §II-A); test/cross-check use only.
// Returns the optimal U_max.
double solve_optimal_per_commodity(const graph::DiGraph& g,
                                   const traffic::DemandMatrix& dm);

// Per-edge utilisation of the optimal solution (|E| entries).
std::vector<double> edge_utilisation(const graph::DiGraph& g,
                                     const OptimalResult& result);

}  // namespace gddr::mcf
