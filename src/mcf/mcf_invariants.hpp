// Multicommodity-flow invariant validators for the debug-contract layer
// (util/contract.hpp).  solve_optimal() runs them through GDDR_VALIDATE on
// every exact solution; tests call them directly on corrupted results.
// Each throws util::ContractViolation on failure.
#pragma once

#include <string_view>

#include "graph/digraph.hpp"
#include "mcf/optimal.hpp"
#include "traffic/demand.hpp"

namespace gddr::mcf {

// Per-destination flow conservation of an exact solution: for every
// destination t with demand and every node v != t, outflow(v) - inflow(v)
// of the t-destined flow equals D[v][t] within `tol` (relative to the
// total demand into t); at t itself the net inflow equals the demand sum.
void check_flow_conservation(const graph::DiGraph& g,
                             const traffic::DemandMatrix& dm,
                             const OptimalResult& result, double tol,
                             std::string_view label);

// U_max consistency between the LP value and its own flow decomposition
// (exact provenance), and plain finiteness/sign sanity for the FPTAS path
// (approximate provenance) whose value must also never undercut any
// single-edge lower bound the flows imply.
void check_umax_consistency(const graph::DiGraph& g,
                            const OptimalResult& result, double tol,
                            std::string_view label);

}  // namespace gddr::mcf
