#include "mcf/cache.hpp"

#include <bit>
#include <stdexcept>

#include "mcf/mean_util.hpp"
#include "mcf/optimal.hpp"

namespace gddr::mcf {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

void mix_double(std::uint64_t& h, double d) {
  mix(h, std::bit_cast<std::uint64_t>(d));
}

}  // namespace

std::uint64_t graph_fingerprint(const graph::DiGraph& g) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(g.num_nodes()));
  for (const auto& e : g.edges()) {
    mix(h, static_cast<std::uint64_t>(e.src));
    mix(h, static_cast<std::uint64_t>(e.dst));
    mix_double(h, e.capacity);
  }
  return h;
}

std::uint64_t demand_fingerprint(const traffic::DemandMatrix& dm) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(dm.num_nodes()));
  for (double d : dm.raw()) mix_double(h, d);
  return h;
}

std::uint64_t OptimalCache::key_for(const graph::DiGraph& g,
                                    const traffic::DemandMatrix& dm) const {
  std::uint64_t key = graph_fingerprint(g);
  const std::uint64_t dk = demand_fingerprint(dm);
  // Combine the two fingerprints order-sensitively.
  key ^= dk + 0x9E3779B97F4A7C15ULL + (key << 6) + (key >> 2);
  return key;
}

double OptimalCache::mean_util(const graph::DiGraph& g,
                               const traffic::DemandMatrix& dm) {
  const std::uint64_t key = key_for(g, dm);
  if (const auto it = mean_cache_.find(key); it != mean_cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const double value = min_mean_utilisation(g, dm);
  mean_cache_.emplace(key, value);
  return value;
}

double OptimalCache::u_max(const graph::DiGraph& g,
                           const traffic::DemandMatrix& dm) {
  const std::uint64_t key = key_for(g, dm);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  const OptimalResult result = solve_optimal(g, dm);
  if (!result.feasible) {
    throw std::runtime_error("OptimalCache: LP infeasible/unsolved");
  }
  cache_.emplace(key, result.u_max);
  return result.u_max;
}

void OptimalCache::clear() {
  cache_.clear();
  mean_cache_.clear();
  hits_ = 0;
  misses_ = 0;
}

}  // namespace gddr::mcf
