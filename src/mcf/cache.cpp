#include "mcf/cache.hpp"

#include <bit>

#include "mcf/mean_util.hpp"
#include "mcf/optimal.hpp"
#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace gddr::mcf {
namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void mix(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
}

void mix_double(std::uint64_t& h, double d) {
  mix(h, std::bit_cast<std::uint64_t>(d));
}

}  // namespace

std::uint64_t graph_fingerprint(const graph::DiGraph& g) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(g.num_nodes()));
  for (const auto& e : g.edges()) {
    mix(h, static_cast<std::uint64_t>(e.src));
    mix(h, static_cast<std::uint64_t>(e.dst));
    mix_double(h, e.capacity);
  }
  return h;
}

std::uint64_t demand_fingerprint(const traffic::DemandMatrix& dm) {
  std::uint64_t h = kFnvOffset;
  mix(h, static_cast<std::uint64_t>(dm.num_nodes()));
  for (double d : dm.raw()) mix_double(h, d);
  return h;
}

OptimalCache::OptimalCache(std::size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

OptimalCache::OptimalCache(const OptimalCache& other) {
  const util::MutexLock lock(other.mutex_);
  capacity_ = other.capacity_;
  cache_ = other.cache_;
  mean_cache_ = other.mean_cache_;
  hits_ = other.hits_;
  misses_ = other.misses_;
  evictions_ = other.evictions_;
  exact_solves_ = other.exact_solves_;
  approx_solves_ = other.approx_solves_;
  // The copied Entry::recency iterators point into the copied lists'
  // nodes only by accident of std::list copying order — rebuild them.
  for (LruMap* lru : {&cache_, &mean_cache_}) {
    for (auto it = lru->order.begin(); it != lru->order.end(); ++it) {
      lru->map[*it].recency = it;
    }
  }
}

OptimalCache& OptimalCache::operator=(const OptimalCache& other) {
  if (this == &other) return *this;
  OptimalCache copy(other);
  const util::MutexLock lock(mutex_);
  capacity_ = copy.capacity_;
  cache_ = std::move(copy.cache_);
  mean_cache_ = std::move(copy.mean_cache_);
  hits_ = copy.hits_;
  misses_ = copy.misses_;
  evictions_ = copy.evictions_;
  exact_solves_ = copy.exact_solves_;
  approx_solves_ = copy.approx_solves_;
  return *this;
}

std::uint64_t OptimalCache::key_for(const graph::DiGraph& g,
                                    const traffic::DemandMatrix& dm) const {
  std::uint64_t key = graph_fingerprint(g);
  const std::uint64_t dk = demand_fingerprint(dm);
  // Combine the two fingerprints order-sensitively.
  key ^= dk + 0x9E3779B97F4A7C15ULL + (key << 6) + (key >> 2);
  return key;
}

bool OptimalCache::lookup(Which which, std::uint64_t key, double& value) {
  const util::MutexLock lock(mutex_);
  LruMap& lru = lru_locked(which);
  const auto it = lru.map.find(key);
  if (it == lru.map.end()) {
    ++misses_;
    obs::count("mcf/cache/miss");
    return false;
  }
  ++hits_;
  obs::count("mcf/cache/hit");
  lru.order.splice(lru.order.begin(), lru.order, it->second.recency);
  value = it->second.value;
  return true;
}

void OptimalCache::insert(Which which, std::uint64_t key, double value) {
  const util::MutexLock lock(mutex_);
  LruMap& lru = lru_locked(which);
  if (lru.map.find(key) != lru.map.end()) return;  // lost a benign race
  while (lru.map.size() >= capacity_) {
    lru.map.erase(lru.order.back());
    lru.order.pop_back();
    ++evictions_;
    obs::count("mcf/cache/evict");
  }
  lru.order.push_front(key);
  lru.map.emplace(key, LruMap::Entry{value, lru.order.begin()});
}

template <typename Solver>
double OptimalCache::lookup_or_solve(Which which, const graph::DiGraph& g,
                                     const traffic::DemandMatrix& dm,
                                     const Solver& solver) {
  const std::uint64_t key = key_for(g, dm);
  double value = 0.0;
  if (lookup(which, key, value)) return value;
  {
    obs::ScopedTimer solve_timer("mcf/solve");
    value = solver();  // LP runs outside the lock
  }
  insert(which, key, value);
  return value;
}

double OptimalCache::mean_util(const graph::DiGraph& g,
                               const traffic::DemandMatrix& dm) {
  return lookup_or_solve(Which::kMeanUtil, g, dm,
                         [&] { return min_mean_utilisation(g, dm); });
}

double OptimalCache::u_max(const graph::DiGraph& g,
                           const traffic::DemandMatrix& dm) {
  return lookup_or_solve(Which::kUmax, g, dm, [&] {
    const OptimalResult result = solve_optimal(g, dm);
    if (result.provenance == SolveProvenance::kFailed) {
      throw util::SolverError("OptimalCache: LP infeasible/unsolved");
    }
    {
      const util::MutexLock lock(mutex_);
      if (result.provenance == SolveProvenance::kExact) {
        ++exact_solves_;
        obs::count("mcf/solve/exact");
      } else {
        ++approx_solves_;
        obs::count("mcf/solve/approx");
      }
    }
    return result.u_max;
  });
}

std::size_t OptimalCache::size() const {
  const util::MutexLock lock(mutex_);
  return cache_.map.size() + mean_cache_.map.size();
}

std::size_t OptimalCache::hits() const {
  const util::MutexLock lock(mutex_);
  return hits_;
}

std::size_t OptimalCache::misses() const {
  const util::MutexLock lock(mutex_);
  return misses_;
}

std::size_t OptimalCache::evictions() const {
  const util::MutexLock lock(mutex_);
  return evictions_;
}

std::size_t OptimalCache::exact_solves() const {
  const util::MutexLock lock(mutex_);
  return exact_solves_;
}

std::size_t OptimalCache::approx_solves() const {
  const util::MutexLock lock(mutex_);
  return approx_solves_;
}

void OptimalCache::clear() {
  const util::MutexLock lock(mutex_);
  cache_.map.clear();
  cache_.order.clear();
  mean_cache_.map.clear();
  mean_cache_.order.clear();
  hits_ = 0;
  misses_ = 0;
  evictions_ = 0;
  exact_solves_ = 0;
  approx_solves_ = 0;
}

}  // namespace gddr::mcf
