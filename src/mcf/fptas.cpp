#include "mcf/fptas.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "graph/algorithms.hpp"

namespace gddr::mcf {
namespace {

using graph::DiGraph;
using graph::EdgeId;
using graph::NodeId;
using traffic::DemandMatrix;

struct Commodity {
  NodeId s;
  NodeId t;
  double d;
};

// Max utilisation if every demand takes its unit-weight shortest path; a
// cheap constant-factor congestion estimate used to pre-scale demands so
// the phase count of the multiplicative-weights loop stays modest.
double shortest_path_u_max(const DiGraph& g, const DemandMatrix& dm) {
  std::vector<double> load(static_cast<size_t>(g.num_edges()), 0.0);
  const auto w = graph::unit_weights(g);
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (dm.out_sum(s) <= 0.0) continue;
    const auto sp = graph::dijkstra(g, s, w);
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      const double d = (s == t) ? 0.0 : dm.at(s, t);
      if (d <= 0.0) continue;
      NodeId v = t;
      while (v != s) {
        const EdgeId pe = sp.parent_edge[static_cast<size_t>(v)];
        if (pe == graph::kInvalidEdge) {
          throw std::runtime_error("fptas: demand pair unreachable");
        }
        load[static_cast<size_t>(pe)] += d;
        v = g.edge(pe).src;
      }
    }
  }
  double u = 0.0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    u = std::max(u, load[static_cast<size_t>(e)] / g.edge(e).capacity);
  }
  return u;
}

}  // namespace

double max_concurrent_flow(const DiGraph& g, const DemandMatrix& dm,
                           const FptasOptions& options) {
  if (dm.num_nodes() != g.num_nodes()) {
    throw std::invalid_argument("fptas: demand/graph size mismatch");
  }
  const double eps = options.epsilon;
  if (eps <= 0.0 || eps >= 0.5) {
    throw std::invalid_argument("fptas: epsilon must be in (0, 0.5)");
  }

  std::vector<Commodity> commodities;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    for (NodeId t = 0; t < g.num_nodes(); ++t) {
      if (s != t && dm.at(s, t) > 0.0) commodities.push_back({s, t, dm.at(s, t)});
    }
  }
  if (commodities.empty()) return 0.0;

  // Pre-scale so lambda* is O(1): shortest-path routing achieves
  // utilisation U_sp, hence lambda*(dm) >= 1/U_sp and (since the optimum
  // can't beat 1 unit of congestion per unit of scaling) lambda*(scaled)
  // lands near 1.  The returned value is unscaled at the end.
  const double u_sp = shortest_path_u_max(g, dm);
  if (u_sp <= 0.0) return 0.0;
  const double scale = u_sp;  // scaled demand d' = d / u_sp
  for (auto& c : commodities) c.d /= scale;

  const auto m = static_cast<double>(g.num_edges());
  const double delta = (1.0 + eps) * std::pow((1.0 + eps) * m, -1.0 / eps);

  std::vector<double> length(static_cast<size_t>(g.num_edges()));
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    length[static_cast<size_t>(e)] = delta / g.edge(e).capacity;
  }
  auto total_length = [&] {
    double d = 0.0;
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      d += length[static_cast<size_t>(e)] * g.edge(e).capacity;
    }
    return d;
  };

  int completed_phases = 0;
  // Phase bound: lambda* of the scaled problem is at most ~1 (shortest-path
  // routing achieves utilisation 1 on it), so the standard analysis bounds
  // phases by O(log(m)/eps^2); the generous cap below only guards against
  // pathological inputs.
  const int max_phases = static_cast<int>(std::ceil(
      4.0 * std::log(m + 2.0) / (eps * eps))) + 64;

  while (total_length() < 1.0 && completed_phases < max_phases) {
    for (const auto& c : commodities) {
      double remaining = c.d;
      while (remaining > 1e-15 && total_length() < 1.0) {
        const auto sp = graph::dijkstra(g, c.s, length);
        const auto path = graph::extract_path(g, sp, c.s, c.t);
        if (path.size() < 2) {
          throw std::runtime_error("fptas: commodity unreachable");
        }
        // Bottleneck capacity along the path.
        double bottleneck = std::numeric_limits<double>::infinity();
        std::vector<EdgeId> path_edges;
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          const auto e = g.find_edge(path[i], path[i + 1]);
          path_edges.push_back(*e);
          bottleneck = std::min(bottleneck, g.edge(*e).capacity);
        }
        const double send = std::min(remaining, bottleneck);
        remaining -= send;
        for (EdgeId e : path_edges) {
          length[static_cast<size_t>(e)] *=
              1.0 + eps * send / g.edge(e).capacity;
        }
      }
      if (total_length() >= 1.0) break;
    }
    if (total_length() < 1.0) ++completed_phases;
  }

  const double log_ratio = std::log((1.0 + eps) / delta) / std::log(1.0 + eps);
  const double lambda_scaled =
      static_cast<double>(completed_phases) / log_ratio;
  return lambda_scaled / scale;
}

double approx_optimal_u_max(const DiGraph& g, const DemandMatrix& dm,
                            const FptasOptions& options) {
  const double lambda = max_concurrent_flow(g, dm, options);
  if (lambda <= 0.0) return 0.0;
  return 1.0 / lambda;
}

}  // namespace gddr::mcf
