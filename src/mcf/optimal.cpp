#include "mcf/optimal.hpp"

#include <cmath>
#include <stdexcept>

#include "lp/simplex.hpp"
#include "mcf/fptas.hpp"
#include "mcf/mcf_invariants.hpp"
#include "util/contract.hpp"
#include "util/fault.hpp"

namespace gddr::mcf {

using graph::DiGraph;
using graph::EdgeId;
using graph::NodeId;
using traffic::DemandMatrix;

const char* to_string(SolveProvenance provenance) {
  switch (provenance) {
    case SolveProvenance::kExact:
      return "exact";
    case SolveProvenance::kApproximate:
      return "approximate";
    case SolveProvenance::kFailed:
      return "failed";
  }
  return "unknown";
}

OptimalResult solve_optimal(const DiGraph& g, const DemandMatrix& dm,
                            const SolveOptions& options) {
  if (dm.num_nodes() != g.num_nodes()) {
    throw std::invalid_argument("solve_optimal: demand/graph size mismatch");
  }
  const int n = g.num_nodes();
  const int ne = g.num_edges();

  // Destinations that actually receive traffic.
  std::vector<NodeId> dests;
  for (NodeId t = 0; t < n; ++t) {
    if (dm.in_sum(t) > 0.0) dests.push_back(t);
  }

  OptimalResult result;
  result.flow_by_dest.assign(static_cast<size_t>(n), {});
  if (dests.empty()) {
    result.feasible = true;
    result.provenance = SolveProvenance::kExact;
    result.u_max = 0.0;
    return result;
  }

  lp::LinearProgram prog;
  const int u_var = prog.add_variable(1.0);  // minimise U_max
  // x[t][e] laid out per destination block.
  std::vector<int> block_start(static_cast<size_t>(n), -1);
  for (NodeId t : dests) {
    block_start[static_cast<size_t>(t)] = prog.num_variables();
    for (EdgeId e = 0; e < ne; ++e) prog.add_variable(0.0);
  }
  auto xvar = [&](NodeId t, EdgeId e) {
    return block_start[static_cast<size_t>(t)] + e;
  };

  // Conservation: net outflow of traffic-to-t at v equals D[v][t], v != t.
  for (NodeId t : dests) {
    for (NodeId v = 0; v < n; ++v) {
      if (v == t) continue;
      std::vector<std::pair<int, double>> terms;
      for (EdgeId e : g.out_edges(v)) terms.emplace_back(xvar(t, e), 1.0);
      for (EdgeId e : g.in_edges(v)) terms.emplace_back(xvar(t, e), -1.0);
      prog.add_constraint(terms, lp::Relation::kEq, dm.at(v, t));
    }
  }
  // Capacity: total flow on e at most U * c(e).
  for (EdgeId e = 0; e < ne; ++e) {
    std::vector<std::pair<int, double>> terms;
    terms.emplace_back(u_var, -g.edge(e).capacity);
    for (NodeId t : dests) terms.emplace_back(xvar(t, e), 1.0);
    prog.add_constraint(terms, lp::Relation::kLe, 0.0);
  }

  // Fault injection (site lp_solve) simulates a simplex breakdown so
  // tests can exercise the fallback chain deterministically.
  lp::Solution sol;
  if (util::inject(util::FaultSite::kLpSolve)) {
    sol.status = lp::SolveStatus::kIterationLimit;
  } else {
    lp::LinearProgram::Options lp_options;
    lp_options.max_iterations = options.max_simplex_iterations;
    sol = prog.solve(lp_options);
  }

  if (sol.status == lp::SolveStatus::kInfeasible) {
    // Unroutable demand: the FPTAS cannot route it either, so this is a
    // genuine failure, not a fallback case.
    result.feasible = false;
    result.provenance = SolveProvenance::kFailed;
    return result;
  }
  if (sol.status != lp::SolveStatus::kOptimal) {
    // Iteration budget exhausted, numerical stall or injected fault —
    // degrade to the Fleischer FPTAS.  It yields only U_max (no flow
    // decomposition), within a 1/(1 - 3*eps) factor of optimal.
    if (options.allow_fptas_fallback) {
      FptasOptions fptas;
      fptas.epsilon = options.fptas_epsilon;
      const double u_approx = approx_optimal_u_max(g, dm, fptas);
      if (std::isfinite(u_approx) && u_approx > 0.0) {
        result.feasible = true;
        result.provenance = SolveProvenance::kApproximate;
        result.u_max = u_approx;
        return result;
      }
    }
    result.feasible = false;
    result.provenance = SolveProvenance::kFailed;
    return result;
  }
  result.feasible = true;
  result.provenance = SolveProvenance::kExact;
  result.u_max = sol.x[static_cast<size_t>(u_var)];
  for (NodeId t : dests) {
    auto& row = result.flow_by_dest[static_cast<size_t>(t)];
    row.resize(static_cast<size_t>(ne));
    for (EdgeId e = 0; e < ne; ++e) {
      row[static_cast<size_t>(e)] =
          sol.x[static_cast<size_t>(xvar(t, e))];
    }
  }
  // The exact solution must route exactly the demand (conservation) and
  // report the busiest edge of its own decomposition as U_max.
  GDDR_VALIDATE(check_flow_conservation(g, dm, result, 1e-6,
                                        "mcf/optimal/conservation"));
  GDDR_VALIDATE(check_umax_consistency(g, result, 1e-6,
                                       "mcf/optimal/umax"));
  return result;
}

double solve_optimal_per_commodity(const DiGraph& g, const DemandMatrix& dm) {
  if (dm.num_nodes() != g.num_nodes()) {
    throw std::invalid_argument("per-commodity: demand/graph size mismatch");
  }
  const int n = g.num_nodes();
  const int ne = g.num_edges();

  struct Commodity {
    NodeId s;
    NodeId t;
    double d;
  };
  std::vector<Commodity> commodities;
  for (NodeId s = 0; s < n; ++s) {
    for (NodeId t = 0; t < n; ++t) {
      if (s != t && dm.at(s, t) > 0.0) {
        commodities.push_back({s, t, dm.at(s, t)});
      }
    }
  }
  if (commodities.empty()) return 0.0;

  lp::LinearProgram prog;
  const int u_var = prog.add_variable(1.0);
  std::vector<int> block(commodities.size());
  for (size_t i = 0; i < commodities.size(); ++i) {
    block[i] = prog.num_variables();
    for (EdgeId e = 0; e < ne; ++e) prog.add_variable(0.0);
  }
  auto fvar = [&](size_t i, EdgeId e) { return block[i] + e; };

  for (size_t i = 0; i < commodities.size(); ++i) {
    const auto& c = commodities[i];
    for (NodeId v = 0; v < n; ++v) {
      if (v == c.t) continue;  // sink absorption implied
      std::vector<std::pair<int, double>> terms;
      for (EdgeId e : g.out_edges(v)) terms.emplace_back(fvar(i, e), 1.0);
      for (EdgeId e : g.in_edges(v)) terms.emplace_back(fvar(i, e), -1.0);
      const double rhs = (v == c.s) ? c.d : 0.0;
      prog.add_constraint(terms, lp::Relation::kEq, rhs);
    }
  }
  for (EdgeId e = 0; e < ne; ++e) {
    std::vector<std::pair<int, double>> terms;
    terms.emplace_back(u_var, -g.edge(e).capacity);
    for (size_t i = 0; i < commodities.size(); ++i) {
      terms.emplace_back(fvar(i, e), 1.0);
    }
    prog.add_constraint(terms, lp::Relation::kLe, 0.0);
  }

  const lp::Solution sol = prog.solve();
  if (sol.status != lp::SolveStatus::kOptimal) {
    throw std::runtime_error("per-commodity LP not optimal: " +
                             lp::to_string(sol.status));
  }
  return sol.x[static_cast<size_t>(u_var)];
}

std::vector<double> edge_utilisation(const DiGraph& g,
                                     const OptimalResult& result) {
  std::vector<double> util(static_cast<size_t>(g.num_edges()), 0.0);
  for (const auto& row : result.flow_by_dest) {
    for (size_t e = 0; e < row.size(); ++e) util[e] += row[e];
  }
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    util[static_cast<size_t>(e)] /= g.edge(e).capacity;
  }
  return util;
}

}  // namespace gddr::mcf
