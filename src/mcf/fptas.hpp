// Fully-polynomial approximation of optimal congestion via maximum
// concurrent flow (Garg-Konemann / Fleischer multiplicative weights).
//
// For splittable routing, the optimal max utilisation U* of a demand
// matrix equals 1 / lambda*, where lambda* is the largest uniform scaling
// of all demands that still fits within the link capacities (the maximum
// concurrent flow value).  This module approximates lambda* without an LP
// and serves two purposes:
//  * an independent cross-check on the simplex-based `solve_optimal`
//    (property tests assert agreement within the FPTAS guarantee), and
//  * a fallback for graphs large enough that a dense simplex is slow.
#pragma once

#include "graph/digraph.hpp"
#include "traffic/demand.hpp"

namespace gddr::mcf {

struct FptasOptions {
  // Approximation parameter; the returned flow value is within a
  // (1 - 3*epsilon) factor of optimal for small epsilon.
  double epsilon = 0.05;
};

// Approximate maximum concurrent flow value lambda (demand scaling).
// Returns 0 if the demand matrix is empty.
double max_concurrent_flow(const graph::DiGraph& g,
                           const traffic::DemandMatrix& dm,
                           const FptasOptions& options = {});

// Approximate optimal max-utilisation: 1 / max_concurrent_flow.
// Returns 0 for an all-zero demand matrix.
double approx_optimal_u_max(const graph::DiGraph& g,
                            const traffic::DemandMatrix& dm,
                            const FptasOptions& options = {});

}  // namespace gddr::mcf
