#include "nn/tape.hpp"

#include <cmath>
#include <stdexcept>
#include <string>
#include <utility>

#include "nn/nn_invariants.hpp"
#include "obs/metrics.hpp"

namespace gddr::nn {

void Tape::check_var(Var v, const char* op) const {
  if (!v.valid() || static_cast<size_t>(v.id) >= nodes_.size()) {
    throw std::invalid_argument(std::string(op) + ": invalid Var");
  }
}

void Tape::check_same_shape(Var a, Var b, const char* op) const {
  check_var(a, op);
  check_var(b, op);
  if (!node(a).value.same_shape(node(b).value)) {
    throw std::invalid_argument(std::string(op) + ": shape mismatch " +
                                node(a).value.shape_str() + " vs " +
                                node(b).value.shape_str());
  }
}

Tape::Var Tape::push(Tensor value, std::function<void(Tape&, int)> backward_fn) {
  Node n;
  n.value = std::move(value);
  n.backward_fn = std::move(backward_fn);
  nodes_.push_back(std::move(n));
  return Var{static_cast<int>(nodes_.size()) - 1};
}

void Tape::reset() {
  for (Node& n : nodes_) {
    if (n.value.capacity() != 0) arena_.release(std::move(n.value));
    if (n.grad.capacity() != 0) arena_.release(std::move(n.grad));
  }
  nodes_.clear();
  retained_.clear();
  if (obs::enabled()) {
    obs::gauge("nn/arena_bytes", static_cast<double>(arena_.bytes_allocated()));
    obs::gauge("nn/arena_reuse", static_cast<double>(arena_.reuse_count()));
  }
}

Tape::Var Tape::constant(const Tensor& value) {
  return push(alloc_copy(value), {});
}

Tape::Var Tape::constant(Tensor&& value) { return push(std::move(value), {}); }

Tape::Var Tape::zeros(int rows, int cols) { return push(alloc(rows, cols), {}); }

Tape::Var Tape::leaf(Parameter& p) {
  Node n;
  n.value = alloc_copy(p.value);
  n.parameter = &p;
  nodes_.push_back(std::move(n));
  return Var{static_cast<int>(nodes_.size()) - 1};
}

// ---------- binary elementwise ----------

Tape::Var Tape::add(Var a, Var b) {
  check_same_shape(a, b, "add");
  Tensor out = alloc_copy(node(a).value);
  out.add_in_place(node(b).value);
  const int ia = a.id;
  const int ib = b.id;
  return push(std::move(out), [ia, ib](Tape& t, int self) {
    t.grad_of(ia).add_in_place(t.grad_of(self));
    t.grad_of(ib).add_in_place(t.grad_of(self));
  });
}

Tape::Var Tape::sub(Var a, Var b) {
  check_same_shape(a, b, "sub");
  Tensor out = alloc_copy(node(a).value);
  const auto bd = node(b).value.data();
  auto od = out.data();
  for (size_t i = 0; i < od.size(); ++i) od[i] -= bd[i];
  const int ia = a.id;
  const int ib = b.id;
  return push(std::move(out), [ia, ib](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    auto ga = t.grad_of(ia).data();
    auto gb = t.grad_of(ib).data();
    for (size_t i = 0; i < g.size(); ++i) {
      ga[i] += g[i];
      gb[i] -= g[i];
    }
  });
}

Tape::Var Tape::mul(Var a, Var b) {
  check_same_shape(a, b, "mul");
  Tensor out = alloc_copy(node(a).value);
  const auto bd = node(b).value.data();
  auto od = out.data();
  for (size_t i = 0; i < od.size(); ++i) od[i] *= bd[i];
  const int ia = a.id;
  const int ib = b.id;
  return push(std::move(out), [ia, ib](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    const auto av = t.value_of(ia).data();
    const auto bv = t.value_of(ib).data();
    auto ga = t.grad_of(ia).data();
    auto gb = t.grad_of(ib).data();
    for (size_t i = 0; i < g.size(); ++i) {
      ga[i] += g[i] * bv[i];
      gb[i] += g[i] * av[i];
    }
  });
}

Tape::Var Tape::div(Var a, Var b) {
  check_same_shape(a, b, "div");
  Tensor out = alloc_copy(node(a).value);
  const auto bd = node(b).value.data();
  auto od = out.data();
  for (size_t i = 0; i < od.size(); ++i) od[i] /= bd[i];
  const int ia = a.id;
  const int ib = b.id;
  return push(std::move(out), [ia, ib](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    const auto av = t.value_of(ia).data();
    const auto bv = t.value_of(ib).data();
    auto ga = t.grad_of(ia).data();
    auto gb = t.grad_of(ib).data();
    for (size_t i = 0; i < g.size(); ++i) {
      ga[i] += g[i] / bv[i];
      gb[i] -= g[i] * av[i] / (bv[i] * bv[i]);
    }
  });
}

Tape::Var Tape::minimum(Var a, Var b) {
  check_same_shape(a, b, "minimum");
  Tensor out = alloc_copy(node(a).value);
  const auto bd = node(b).value.data();
  auto od = out.data();
  for (size_t i = 0; i < od.size(); ++i) od[i] = std::min(od[i], bd[i]);
  const int ia = a.id;
  const int ib = b.id;
  return push(std::move(out), [ia, ib](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    const auto av = t.value_of(ia).data();
    const auto bv = t.value_of(ib).data();
    auto ga = t.grad_of(ia).data();
    auto gb = t.grad_of(ib).data();
    for (size_t i = 0; i < g.size(); ++i) {
      if (av[i] <= bv[i]) {
        ga[i] += g[i];
      } else {
        gb[i] += g[i];
      }
    }
  });
}

Tape::Var Tape::maximum(Var a, Var b) {
  check_same_shape(a, b, "maximum");
  Tensor out = alloc_copy(node(a).value);
  const auto bd = node(b).value.data();
  auto od = out.data();
  for (size_t i = 0; i < od.size(); ++i) od[i] = std::max(od[i], bd[i]);
  const int ia = a.id;
  const int ib = b.id;
  return push(std::move(out), [ia, ib](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    const auto av = t.value_of(ia).data();
    const auto bv = t.value_of(ib).data();
    auto ga = t.grad_of(ia).data();
    auto gb = t.grad_of(ib).data();
    for (size_t i = 0; i < g.size(); ++i) {
      if (av[i] >= bv[i]) {
        ga[i] += g[i];
      } else {
        gb[i] += g[i];
      }
    }
  });
}

// ---------- linear algebra / shaping ----------

Tape::Var Tape::matmul(Var a, Var b) {
  check_var(a, "matmul");
  check_var(b, "matmul");
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  if (av.cols() != bv.rows()) {
    throw std::invalid_argument("matmul: inner dims " + av.shape_str() +
                                " x " + bv.shape_str());
  }
  Tensor out = alloc(av.rows(), bv.cols());
  kernels::matmul_nn(av.rows(), av.cols(), bv.cols(), av.data().data(),
                     bv.data().data(), out.data().data(), pool_);
  const int ia = a.id;
  const int ib = b.id;
  return push(std::move(out), [ia, ib](Tape& t, int self) {
    const Tensor& g = t.grad_of(self);
    const Tensor& va = t.value_of(ia);
    const Tensor& vb = t.value_of(ib);
    // gA += G * B^T, gB += A^T * G — transpose-free kernel variants.
    kernels::matmul_nt_acc(g.rows(), g.cols(), va.cols(), g.data().data(),
                           vb.data().data(), t.grad_of(ia).data().data(),
                           t.pool_);
    kernels::matmul_tn_acc(va.rows(), va.cols(), g.cols(), va.data().data(),
                           g.data().data(), t.grad_of(ib).data().data(),
                           t.pool_);
  });
}

Tape::Var Tape::linear(Var x, Var w, Var bias, Activation act) {
  check_var(x, "linear");
  check_var(w, "linear");
  check_var(bias, "linear");
  const Tensor& xv = node(x).value;
  const Tensor& wv = node(w).value;
  const Tensor& bv = node(bias).value;
  if (xv.cols() != wv.rows()) {
    throw std::invalid_argument("linear: inner dims " + xv.shape_str() +
                                " x " + wv.shape_str());
  }
  if (bv.rows() != 1 || bv.cols() != wv.cols()) {
    throw std::invalid_argument("linear: bias " + bv.shape_str() +
                                " for weights " + wv.shape_str());
  }
  Tensor out = alloc(xv.rows(), wv.cols());
  kernels::matmul_nn(xv.rows(), xv.cols(), wv.cols(), xv.data().data(),
                     wv.data().data(), out.data().data(), pool_);
  kernels::bias_act(out.rows(), out.cols(), out.data().data(),
                    bv.data().data(), out.data().data(), act);
  const int ix = x.id;
  const int iw = w.id;
  const int ib = bias.id;
  return push(std::move(out), [ix, iw, ib, act](Tape& t, int self) {
    const Tensor& g = t.grad_of(self);
    const Tensor& y = t.value_of(self);
    const Tensor& vx = t.value_of(ix);
    const Tensor& vw = t.value_of(iw);
    const int m = g.rows();
    const int n = g.cols();
    const int k = vx.cols();
    // d = g ⊙ act'(pre), expressed via the post-activation y; identity
    // needs no scratch at all.
    Tensor scratch;
    const float* d = g.data().data();
    if (act != Activation::kIdentity) {
      scratch = t.arena_.acquire(m, n);
      kernels::act_grad(g.size(), d, y.data().data(), scratch.data().data(),
                        act);
      d = scratch.data().data();
    }
    kernels::matmul_nt_acc(m, n, k, d, vw.data().data(),
                           t.grad_of(ix).data().data(), t.pool_);
    kernels::matmul_tn_acc(m, k, n, vx.data().data(), d,
                           t.grad_of(iw).data().data(), t.pool_);
    kernels::col_sum_acc(m, n, d, t.grad_of(ib).data().data());
    if (scratch.capacity() != 0) t.arena_.release(std::move(scratch));
  });
}

Tape::Var Tape::add_bias(Var m, Var bias) {
  check_var(m, "add_bias");
  check_var(bias, "add_bias");
  const Tensor& mv = node(m).value;
  const Tensor& bv = node(bias).value;
  if (bv.rows() != 1 || bv.cols() != mv.cols()) {
    throw std::invalid_argument("add_bias: bias " + bv.shape_str() +
                                " for matrix " + mv.shape_str());
  }
  Tensor out = alloc_copy(mv);
  for (int i = 0; i < out.rows(); ++i) {
    for (int j = 0; j < out.cols(); ++j) out.at(i, j) += bv.at(0, j);
  }
  const int im = m.id;
  const int ib = bias.id;
  return push(std::move(out), [im, ib](Tape& t, int self) {
    const Tensor& g = t.grad_of(self);
    t.grad_of(im).add_in_place(g);
    Tensor& gb = t.grad_of(ib);
    for (int i = 0; i < g.rows(); ++i) {
      for (int j = 0; j < g.cols(); ++j) gb.at(0, j) += g.at(i, j);
    }
  });
}

Tape::Var Tape::broadcast_rows(Var rowvec, int n) {
  check_var(rowvec, "broadcast_rows");
  const Tensor& rv = node(rowvec).value;
  if (rv.rows() != 1) {
    throw std::invalid_argument("broadcast_rows: input must be 1xC, got " +
                                rv.shape_str());
  }
  if (n <= 0) throw std::invalid_argument("broadcast_rows: n <= 0");
  Tensor out = alloc(n, rv.cols());
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < rv.cols(); ++j) out.at(i, j) = rv.at(0, j);
  }
  const int ir = rowvec.id;
  return push(std::move(out), [ir](Tape& t, int self) {
    const Tensor& g = t.grad_of(self);
    Tensor& gr = t.grad_of(ir);
    for (int i = 0; i < g.rows(); ++i) {
      for (int j = 0; j < g.cols(); ++j) gr.at(0, j) += g.at(i, j);
    }
  });
}

Tape::Var Tape::broadcast_cols(Var colvec, int n) {
  check_var(colvec, "broadcast_cols");
  const Tensor& cv = node(colvec).value;
  if (cv.cols() != 1) {
    throw std::invalid_argument("broadcast_cols: input must be Nx1, got " +
                                cv.shape_str());
  }
  if (n <= 0) throw std::invalid_argument("broadcast_cols: n <= 0");
  Tensor out = alloc(cv.rows(), n);
  for (int i = 0; i < cv.rows(); ++i) {
    for (int j = 0; j < n; ++j) out.at(i, j) = cv.at(i, 0);
  }
  const int ic = colvec.id;
  return push(std::move(out), [ic](Tape& t, int self) {
    const Tensor& g = t.grad_of(self);
    Tensor& gc = t.grad_of(ic);
    for (int i = 0; i < g.rows(); ++i) {
      for (int j = 0; j < g.cols(); ++j) gc.at(i, 0) += g.at(i, j);
    }
  });
}

Tape::Var Tape::reshape(Var x, int rows, int cols) {
  check_var(x, "reshape");
  const Tensor& xv = node(x).value;
  if (rows < 0 || cols < 0 ||
      static_cast<size_t>(rows) * static_cast<size_t>(cols) != xv.size()) {
    throw std::invalid_argument("reshape: element count mismatch for " +
                                xv.shape_str());
  }
  Tensor out = alloc(rows, cols);
  const auto src = xv.data();
  auto dst = out.data();
  for (size_t i = 0; i < src.size(); ++i) dst[i] = src[i];
  const int ix = x.id;
  return push(std::move(out), [ix](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    auto gx = t.grad_of(ix).data();
    for (size_t i = 0; i < g.size(); ++i) gx[i] += g[i];
  });
}

Tape::Var Tape::concat_cols(Var a, Var b) {
  check_var(a, "concat_cols");
  check_var(b, "concat_cols");
  const Tensor& av = node(a).value;
  const Tensor& bv = node(b).value;
  if (av.rows() != bv.rows()) {
    throw std::invalid_argument("concat_cols: row mismatch " +
                                av.shape_str() + " vs " + bv.shape_str());
  }
  Tensor out = alloc(av.rows(), av.cols() + bv.cols());
  for (int i = 0; i < av.rows(); ++i) {
    for (int j = 0; j < av.cols(); ++j) out.at(i, j) = av.at(i, j);
    for (int j = 0; j < bv.cols(); ++j) {
      out.at(i, av.cols() + j) = bv.at(i, j);
    }
  }
  const int ia = a.id;
  const int ib = b.id;
  const int ac = av.cols();
  return push(std::move(out), [ia, ib, ac](Tape& t, int self) {
    const Tensor& g = t.grad_of(self);
    Tensor& ga = t.grad_of(ia);
    Tensor& gb = t.grad_of(ib);
    for (int i = 0; i < g.rows(); ++i) {
      for (int j = 0; j < ga.cols(); ++j) ga.at(i, j) += g.at(i, j);
      for (int j = 0; j < gb.cols(); ++j) gb.at(i, j) += g.at(i, ac + j);
    }
  });
}

Tape::Var Tape::slice_cols(Var m, int start, int len) {
  check_var(m, "slice_cols");
  const Tensor& mv = node(m).value;
  if (start < 0 || len <= 0 || start + len > mv.cols()) {
    throw std::invalid_argument("slice_cols: range [" + std::to_string(start) +
                                ", +" + std::to_string(len) + ") of " +
                                mv.shape_str());
  }
  Tensor out = alloc(mv.rows(), len);
  for (int i = 0; i < mv.rows(); ++i) {
    for (int j = 0; j < len; ++j) out.at(i, j) = mv.at(i, start + j);
  }
  const int im = m.id;
  return push(std::move(out), [im, start, len](Tape& t, int self) {
    const Tensor& g = t.grad_of(self);
    Tensor& gm = t.grad_of(im);
    for (int i = 0; i < g.rows(); ++i) {
      for (int j = 0; j < len; ++j) gm.at(i, start + j) += g.at(i, j);
    }
  });
}

namespace {

void gather_rows_forward(const gddr::nn::Tensor& mv,
                         const std::vector<int>& indices,
                         gddr::nn::Tensor& out) {
  for (size_t i = 0; i < indices.size(); ++i) {
    for (int j = 0; j < mv.cols(); ++j) {
      out.at(static_cast<int>(i), j) = mv.at(indices[i], j);
    }
  }
}

void gather_rows_backward(const gddr::nn::Tensor& g,
                          const std::vector<int>& indices,
                          gddr::nn::Tensor& gm) {
  for (size_t i = 0; i < indices.size(); ++i) {
    for (int j = 0; j < g.cols(); ++j) {
      gm.at(indices[i], j) += g.at(static_cast<int>(i), j);
    }
  }
}

}  // namespace

Tape::Var Tape::gather_rows(Var m, std::vector<int> indices) {
  check_var(m, "gather_rows");
  const Tensor& mv = node(m).value;
  for (int idx : indices) {
    if (idx < 0 || idx >= mv.rows()) {
      throw std::invalid_argument("gather_rows: index out of range");
    }
  }
  Tensor out = alloc(static_cast<int>(indices.size()), mv.cols());
  gather_rows_forward(mv, indices, out);
  const int im = m.id;
  return push(std::move(out),
              [im, indices = std::move(indices)](Tape& t, int self) {
                gather_rows_backward(t.grad_of(self), indices, t.grad_of(im));
              });
}

Tape::Var Tape::gather_rows(Var m,
                            std::shared_ptr<const std::vector<int>> indices) {
  check_var(m, "gather_rows");
  if (!indices) throw std::invalid_argument("gather_rows: null indices");
  const Tensor& mv = node(m).value;
  for (int idx : *indices) {
    if (idx < 0 || idx >= mv.rows()) {
      throw std::invalid_argument("gather_rows: index out of range");
    }
  }
  Tensor out = alloc(static_cast<int>(indices->size()), mv.cols());
  gather_rows_forward(mv, *indices, out);
  const int im = m.id;
  const std::vector<int>* idx = indices.get();
  retained_.push_back(std::move(indices));
  return push(std::move(out), [im, idx](Tape& t, int self) {
    gather_rows_backward(t.grad_of(self), *idx, t.grad_of(im));
  });
}

Tape::Var Tape::segment_sum(Var m, std::vector<int> segments,
                            int num_segments) {
  check_var(m, "segment_sum");
  const Tensor& mv = node(m).value;
  if (segments.size() != static_cast<size_t>(mv.rows())) {
    throw std::invalid_argument("segment_sum: segment count != rows");
  }
  for (int s : segments) {
    if (s < 0 || s >= num_segments) {
      throw std::invalid_argument("segment_sum: segment id out of range");
    }
  }
  Tensor out = alloc(num_segments, mv.cols());
  for (size_t i = 0; i < segments.size(); ++i) {
    for (int j = 0; j < mv.cols(); ++j) {
      out.at(segments[i], j) += mv.at(static_cast<int>(i), j);
    }
  }
  const int im = m.id;
  return push(std::move(out),
              [im, segments = std::move(segments)](Tape& t, int self) {
                const Tensor& g = t.grad_of(self);
                Tensor& gm = t.grad_of(im);
                for (size_t i = 0; i < segments.size(); ++i) {
                  for (int j = 0; j < g.cols(); ++j) {
                    gm.at(static_cast<int>(i), j) += g.at(segments[i], j);
                  }
                }
              });
}

Tape::Var Tape::segment_sum(Var m,
                            std::shared_ptr<const kernels::SegmentPlan> plan) {
  check_var(m, "segment_sum");
  if (!plan) throw std::invalid_argument("segment_sum: null plan");
  const Tensor& mv = node(m).value;
  if (plan->num_rows() != mv.rows()) {
    throw std::invalid_argument("segment_sum: plan rows != input rows");
  }
  Tensor out = alloc(plan->num_segments, mv.cols());
  kernels::segment_sum(*plan, mv.cols(), mv.data().data(), out.data().data());
  const int im = m.id;
  const kernels::SegmentPlan* p = plan.get();
  retained_.push_back(std::move(plan));
  return push(std::move(out), [im, p](Tape& t, int self) {
    const Tensor& g = t.grad_of(self);
    kernels::segment_sum_grad(*p, g.cols(), g.data().data(),
                              t.grad_of(im).data().data());
  });
}

// ---------- unary ----------

namespace {

template <typename Fwd>
Tensor apply_unary(Tensor out, Fwd fwd) {
  for (float& v : out.data()) v = fwd(v);
  return out;
}

}  // namespace

Tape::Var Tape::relu(Var x) {
  check_var(x, "relu");
  Tensor out = apply_unary(alloc_copy(node(x).value),
                           [](float v) { return v > 0.0F ? v : 0.0F; });
  const int ix = x.id;
  return push(std::move(out), [ix](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    const auto xv = t.value_of(ix).data();
    auto gx = t.grad_of(ix).data();
    for (size_t i = 0; i < g.size(); ++i) {
      if (xv[i] > 0.0F) gx[i] += g[i];
    }
  });
}

Tape::Var Tape::tanh(Var x) {
  check_var(x, "tanh");
  Tensor out = apply_unary(alloc_copy(node(x).value),
                           [](float v) { return std::tanh(v); });
  const int ix = x.id;
  return push(std::move(out), [ix](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    const auto y = t.value_of(self).data();
    auto gx = t.grad_of(ix).data();
    for (size_t i = 0; i < g.size(); ++i) {
      gx[i] += g[i] * (1.0F - y[i] * y[i]);
    }
  });
}

Tape::Var Tape::sigmoid(Var x) {
  check_var(x, "sigmoid");
  Tensor out = apply_unary(alloc_copy(node(x).value), [](float v) {
    return 1.0F / (1.0F + std::exp(-v));
  });
  const int ix = x.id;
  return push(std::move(out), [ix](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    const auto y = t.value_of(self).data();
    auto gx = t.grad_of(ix).data();
    for (size_t i = 0; i < g.size(); ++i) {
      gx[i] += g[i] * y[i] * (1.0F - y[i]);
    }
  });
}

Tape::Var Tape::exp(Var x) {
  check_var(x, "exp");
  Tensor out = apply_unary(alloc_copy(node(x).value),
                           [](float v) { return std::exp(v); });
  const int ix = x.id;
  return push(std::move(out), [ix](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    const auto y = t.value_of(self).data();
    auto gx = t.grad_of(ix).data();
    for (size_t i = 0; i < g.size(); ++i) gx[i] += g[i] * y[i];
  });
}

Tape::Var Tape::log(Var x) {
  check_var(x, "log");
  Tensor out = apply_unary(alloc_copy(node(x).value),
                           [](float v) { return std::log(v); });
  const int ix = x.id;
  return push(std::move(out), [ix](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    const auto xv = t.value_of(ix).data();
    auto gx = t.grad_of(ix).data();
    for (size_t i = 0; i < g.size(); ++i) gx[i] += g[i] / xv[i];
  });
}

Tape::Var Tape::square(Var x) {
  check_var(x, "square");
  Tensor out = apply_unary(alloc_copy(node(x).value),
                           [](float v) { return v * v; });
  const int ix = x.id;
  return push(std::move(out), [ix](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    const auto xv = t.value_of(ix).data();
    auto gx = t.grad_of(ix).data();
    for (size_t i = 0; i < g.size(); ++i) gx[i] += 2.0F * g[i] * xv[i];
  });
}

Tape::Var Tape::neg(Var x) { return scale(x, -1.0F); }

Tape::Var Tape::scale(Var x, float k) {
  check_var(x, "scale");
  Tensor out = apply_unary(alloc_copy(node(x).value),
                           [k](float v) { return k * v; });
  const int ix = x.id;
  return push(std::move(out), [ix, k](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    auto gx = t.grad_of(ix).data();
    for (size_t i = 0; i < g.size(); ++i) gx[i] += k * g[i];
  });
}

Tape::Var Tape::add_scalar(Var x, float k) {
  check_var(x, "add_scalar");
  Tensor out = apply_unary(alloc_copy(node(x).value),
                           [k](float v) { return v + k; });
  const int ix = x.id;
  return push(std::move(out), [ix](Tape& t, int self) {
    t.grad_of(ix).add_in_place(t.grad_of(self));
  });
}

Tape::Var Tape::clip(Var x, float lo, float hi) {
  check_var(x, "clip");
  if (!(lo < hi)) throw std::invalid_argument("clip: lo >= hi");
  Tensor out = apply_unary(alloc_copy(node(x).value), [lo, hi](float v) {
    return std::min(hi, std::max(lo, v));
  });
  const int ix = x.id;
  return push(std::move(out), [ix, lo, hi](Tape& t, int self) {
    const auto g = t.grad_of(self).data();
    const auto xv = t.value_of(ix).data();
    auto gx = t.grad_of(ix).data();
    for (size_t i = 0; i < g.size(); ++i) {
      if (xv[i] > lo && xv[i] < hi) gx[i] += g[i];
    }
  });
}

// ---------- reductions ----------

Tape::Var Tape::sum_all(Var x) {
  check_var(x, "sum_all");
  double total = 0.0;
  for (float v : node(x).value.data()) total += v;
  Tensor out = alloc(1, 1);
  out.at(0, 0) = static_cast<float>(total);
  const int ix = x.id;
  return push(std::move(out), [ix](Tape& t, int self) {
    const float g = t.grad_of(self).at(0, 0);
    for (float& v : t.grad_of(ix).data()) v += g;
  });
}

Tape::Var Tape::mean_all(Var x) {
  check_var(x, "mean_all");
  const auto count = static_cast<float>(node(x).value.size());
  if (count == 0.0F) throw std::invalid_argument("mean_all: empty tensor");
  return scale(sum_all(x), 1.0F / count);
}

Tape::Var Tape::sum_rows(Var x) {
  check_var(x, "sum_rows");
  const Tensor& xv = node(x).value;
  Tensor out = alloc(1, xv.cols());
  for (int i = 0; i < xv.rows(); ++i) {
    for (int j = 0; j < xv.cols(); ++j) out.at(0, j) += xv.at(i, j);
  }
  const int ix = x.id;
  return push(std::move(out), [ix](Tape& t, int self) {
    const Tensor& g = t.grad_of(self);
    Tensor& gx = t.grad_of(ix);
    for (int i = 0; i < gx.rows(); ++i) {
      for (int j = 0; j < gx.cols(); ++j) gx.at(i, j) += g.at(0, j);
    }
  });
}

Tape::Var Tape::sum_cols(Var x) {
  check_var(x, "sum_cols");
  const Tensor& xv = node(x).value;
  Tensor out = alloc(xv.rows(), 1);
  for (int i = 0; i < xv.rows(); ++i) {
    for (int j = 0; j < xv.cols(); ++j) out.at(i, 0) += xv.at(i, j);
  }
  const int ix = x.id;
  return push(std::move(out), [ix](Tape& t, int self) {
    const Tensor& g = t.grad_of(self);
    Tensor& gx = t.grad_of(ix);
    for (int i = 0; i < gx.rows(); ++i) {
      for (int j = 0; j < gx.cols(); ++j) gx.at(i, j) += g.at(i, 0);
    }
  });
}

// ---------- execution ----------

const Tensor& Tape::value(Var v) const {
  check_var(v, "value");
  return node(v).value;
}

const Tensor& Tape::grad(Var v) const {
  check_var(v, "grad");
  const Node& n = node(v);
  if (!n.grad.same_shape(n.value)) {
    // A node backward never reached has an exactly-zero gradient;
    // materialise it so callers keep getting a correctly-shaped tensor.
    const_cast<Tape*>(this)->grad_of(v.id);
  }
  return n.grad;
}

void Tape::backward(Var loss) {
  check_var(loss, "backward");
  const Tensor& lv = node(loss).value;
  if (lv.rows() != 1 || lv.cols() != 1) {
    throw std::invalid_argument("backward: loss must be 1x1, got " +
                                lv.shape_str());
  }
  // Recycle buffers from any previous backward instead of zero-filling
  // them, so only nodes this pass actually reaches get (re)acquired.
  for (auto& n : nodes_) {
    if (n.grad.capacity() != 0) arena_.release(std::move(n.grad));
    n.grad = Tensor();
  }
  const std::size_t allocs_before = grad_allocs_;
  grad_of(loss.id).at(0, 0) = 1.0F;
  for (int i = loss.id; i >= 0; --i) {
    Node& n = nodes_[static_cast<size_t>(i)];
    // No consumer propagated into node i: its gradient is zero, and
    // pushing zeros further upstream would change nothing.
    if (!n.grad.same_shape(n.value)) continue;
    active_backward_node_ = i;
    if (n.backward_fn) n.backward_fn(*this, i);
    if (n.parameter != nullptr) n.parameter->grad.add_in_place(n.grad);
  }
  active_backward_node_ = -1;
  // Grad-shape agreement over the whole tape: every gradient this pass
  // allocated must mirror its node's value shape exactly.
  GDDR_VALIDATE([&] {
    for (const Node& n : nodes_) {
      if (n.grad.rows() == 0 && n.grad.cols() == 0) continue;
      check_grad_shape(n.value, n.grad, "nn/tape/grad-shape");
    }
  }());
  if (obs::enabled()) {
    obs::count("nn/tape/backwards");
    obs::count("nn/tape/grad_allocs", grad_allocs_ - allocs_before);
  }
}

}  // namespace gddr::nn
