// Autodiff invariant validators for the debug-contract layer
// (util/contract.hpp).  Tape::backward runs these through GDDR_VALIDATE;
// tests call them directly with broken tensors.  Each throws
// util::ContractViolation.
#pragma once

#include <string_view>

#include "nn/tensor.hpp"

namespace gddr::nn {

// Every entry of `t` is finite (no NaN/Inf); names the first offender.
void check_finite(const Tensor& t, std::string_view label);

// Grad-shape agreement: an allocated gradient buffer must have exactly its
// node value's shape, or backward accumulation silently corrupts memory.
void check_grad_shape(const Tensor& value, const Tensor& grad,
                      std::string_view label);

}  // namespace gddr::nn
