#include "nn/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

#include "util/thread_pool.hpp"

namespace gddr::nn::kernels {

namespace {

// Blocking factors for the micro-kernels.  They are deliberately small:
// one 8-wide accumulator (two xmm registers) plus a handful of hoisted
// broadcasts is a shape the auto-vectoriser compiles to clean SSE.  A
// larger explicit register tile (4x8) measured ~2.5x *slower* here — the
// compiler spilled the tile and synthesised broadcasts through long
// shuffle chains.
constexpr int kMr = 4;   // C rows sharing one G pass in the TN kernel.
constexpr int kNr = 8;   // Panel width / accumulator width.
constexpr int kKu = 8;   // k-unroll of the NN kernel's AXPY chain.

// Per-thread packing scratch, reused across calls so packing performs no
// steady-state allocation.  Workers of a pooled matmul only *read* the
// caller's packed panels; each thread packs into its own buffer.
std::vector<float>& pack_buffer() {
  thread_local std::vector<float> buf;
  return buf;
}

std::size_t padded_cols(int n) {
  return static_cast<std::size_t>((n + kNr - 1) / kNr) *
         static_cast<std::size_t>(kNr);
}

// Packs B^T: panel p holds B rows [p*kNr, p*kNr + kNr) laid out j-major,
// so element (p*kNr + jj, j) of B lives at p*n*kNr + j*kNr + jj.  Rows
// past k are zero-padded.
void pack_panels_transposed(int k, int n, const float* b,
                            std::vector<float>& packed) {
  const std::size_t kp = padded_cols(k);
  packed.assign(static_cast<std::size_t>(n) * kp, 0.0F);
  for (int kk = 0; kk < k; ++kk) {
    const float* row = b + static_cast<std::size_t>(kk) * n;
    const int p = kk / kNr;
    const int jj = kk % kNr;
    for (int j = 0; j < n; ++j) {
      packed[(static_cast<std::size_t>(p) * n + j) * kNr + jj] = row[j];
    }
  }
}

// Rows [i0, i1) of C = A * B.  Shaped as kKu fused AXPYs: each C row is
// zeroed, then for each block of kKu k-indices the row makes one pass,
// adding the kKu products *in k order* per element before storing.  The
// per-element chain is therefore exactly the naive ikj order, so the
// result equals ref::matmul_nn under == (the reference's zero-skip only
// drops +/-0 additions), while C is read and written kKu-times less
// often than the naive loop.  B needs no packing here — its rows are
// already contiguous.  Pointers must not alias (fresh output buffer).
void matmul_nn_rows(int i0, int i1, int k, int n, const float* __restrict a,
                    const float* __restrict b, float* __restrict c) {
  for (int i = i0; i < i1; ++i) {
    const float* arow = a + static_cast<std::size_t>(i) * k;
    float* crow = c + static_cast<std::size_t>(i) * n;
    std::fill(crow, crow + n, 0.0F);
    int kk = 0;
    for (; kk + kKu <= k; kk += kKu) {
      const float a0 = arow[kk + 0];
      const float a1 = arow[kk + 1];
      const float a2 = arow[kk + 2];
      const float a3 = arow[kk + 3];
      const float a4 = arow[kk + 4];
      const float a5 = arow[kk + 5];
      const float a6 = arow[kk + 6];
      const float a7 = arow[kk + 7];
      const float* __restrict b0 = b + static_cast<std::size_t>(kk) * n;
      const float* __restrict b1 = b0 + n;
      const float* __restrict b2 = b1 + n;
      const float* __restrict b3 = b2 + n;
      const float* __restrict b4 = b3 + n;
      const float* __restrict b5 = b4 + n;
      const float* __restrict b6 = b5 + n;
      const float* __restrict b7 = b6 + n;
      for (int j = 0; j < n; ++j) {
        float x = crow[j];
        x += a0 * b0[j];
        x += a1 * b1[j];
        x += a2 * b2[j];
        x += a3 * b3[j];
        x += a4 * b4[j];
        x += a5 * b5[j];
        x += a6 * b6[j];
        x += a7 * b7[j];
        crow[j] = x;
      }
    }
    for (; kk < k; ++kk) {
      const float aik = arow[kk];
      const float* __restrict brow = b + static_cast<std::size_t>(kk) * n;
      for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

// Rows [i0, i1) of C (m x k) += G (m x n) * B^T using B^T panels.  The
// accumulator is *seeded from C* and stored back once per panel, so per
// element (i, kk) the chain is C's prior value followed by j-ascending
// adds — the same chain the naive backward loop produces, with one C
// round-trip per panel instead of per j.  The packed layout makes the
// kNr lanes of each j contiguous (in B itself those lanes are n apart).
// The hot panel loop is written with SSE intrinsics on x86-64: the
// auto-vectoriser turns the equivalent scalar body into shuffle-heavy
// lane-assembly code that measured ~6x slower.  Vector lanes map to
// distinct output elements, so the intrinsic form computes bit-identical
// results to the scalar fallback.
void matmul_nt_rows(int i0, int i1, int n, int k, const float* __restrict g,
                    const float* __restrict packed, float* __restrict c) {
  const int full = k / kNr;  // Panels entirely inside [0, k).
  for (int i = i0; i < i1; ++i) {
    const float* grow = g + static_cast<std::size_t>(i) * n;
    float* crow = c + static_cast<std::size_t>(i) * k;
    for (int p = 0; p < full; ++p) {
      const int k0 = p * kNr;
      const float* __restrict bp =
          packed + static_cast<std::size_t>(p) * n * kNr;
#if defined(__SSE2__)
      __m128 acc0 = _mm_loadu_ps(crow + k0);
      __m128 acc1 = _mm_loadu_ps(crow + k0 + 4);
      for (int j = 0; j < n; ++j) {
        const __m128 gij = _mm_set1_ps(grow[j]);
        const float* __restrict brow = bp + static_cast<std::size_t>(j) * kNr;
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(gij, _mm_loadu_ps(brow)));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(gij, _mm_loadu_ps(brow + 4)));
      }
      _mm_storeu_ps(crow + k0, acc0);
      _mm_storeu_ps(crow + k0 + 4, acc1);
#else
      float acc[kNr];
      for (int jj = 0; jj < kNr; ++jj) acc[jj] = crow[k0 + jj];
      for (int j = 0; j < n; ++j) {
        const float gij = grow[j];
        const float* __restrict brow = bp + static_cast<std::size_t>(j) * kNr;
        for (int jj = 0; jj < kNr; ++jj) acc[jj] += gij * brow[jj];
      }
      for (int jj = 0; jj < kNr; ++jj) crow[k0 + jj] = acc[jj];
#endif
    }
    // Tail panel: scalar per output element, same j-ascending chain.
    for (int kk = full * kNr; kk < k; ++kk) {
      const float* __restrict bcol = packed +
                                     static_cast<std::size_t>(full) * n * kNr +
                                     (kk - full * kNr);
      float acc = crow[kk];
      for (int j = 0; j < n; ++j) {
        acc += grow[j] * bcol[static_cast<std::size_t>(j) * kNr];
      }
      crow[kk] = acc;
    }
  }
}

// Rows [k0, k1) of C (k x n) += A^T * G.  Four C rows share each pass
// over G; per element (kk, j) the m loop ascends in one chain, matching
// the naive backward loop.
void matmul_tn_rows(int k0, int k1, int m, int k, int n,
                    const float* __restrict a, const float* __restrict g,
                    float* __restrict c) {
  int kk = k0;
  for (; kk + kMr <= k1; kk += kMr) {
    float* c0 = c + static_cast<std::size_t>(kk) * n;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    for (int mm = 0; mm < m; ++mm) {
      const float* arow = a + static_cast<std::size_t>(mm) * k + kk;
      const float* grow = g + static_cast<std::size_t>(mm) * n;
      const float a0 = arow[0];
      const float a1 = arow[1];
      const float a2 = arow[2];
      const float a3 = arow[3];
      for (int j = 0; j < n; ++j) {
        const float gj = grow[j];
        c0[j] += a0 * gj;
        c1[j] += a1 * gj;
        c2[j] += a2 * gj;
        c3[j] += a3 * gj;
      }
    }
  }
  for (; kk < k1; ++kk) {
    float* crow = c + static_cast<std::size_t>(kk) * n;
    for (int mm = 0; mm < m; ++mm) {
      const float amk = a[static_cast<std::size_t>(mm) * k + kk];
      const float* grow = g + static_cast<std::size_t>(mm) * n;
      for (int j = 0; j < n; ++j) crow[j] += amk * grow[j];
    }
  }
}

// Shards [0, rows) across the pool in fixed kRowsPerTask blocks when the
// kernel is big enough; otherwise runs fn(0, rows) inline.  The block
// decomposition never depends on the worker count.
template <typename Fn>
void shard_rows(util::ThreadPool* pool, int rows, std::size_t flops,
                const Fn& fn) {
  if (pool == nullptr || pool->size() <= 1 || rows <= kRowsPerTask ||
      flops < kParallelMinFlops) {
    fn(0, rows);
    return;
  }
  const auto tasks =
      static_cast<std::size_t>((rows + kRowsPerTask - 1) / kRowsPerTask);
  util::parallel_for(pool, tasks, [&](std::size_t t) {
    const int i0 = static_cast<int>(t) * kRowsPerTask;
    const int i1 = std::min(rows, i0 + kRowsPerTask);
    fn(i0, i1);
  });
}

std::size_t flops_of(int m, int k, int n) {
  return static_cast<std::size_t>(m) * static_cast<std::size_t>(k) *
         static_cast<std::size_t>(n);
}

}  // namespace

void matmul_nn(int m, int k, int n, const float* a, const float* b, float* c,
               util::ThreadPool* pool) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    std::fill(c, c + static_cast<std::size_t>(m) * n, 0.0F);
    return;
  }
  shard_rows(pool, m, flops_of(m, k, n), [&](int i0, int i1) {
    matmul_nn_rows(i0, i1, k, n, a, b, c);
  });
}

void matmul_nt_acc(int m, int n, int k, const float* g, const float* b,
                   float* c, util::ThreadPool* pool) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  // Tiny products don't amortise the B^T packing pass; the reference
  // loop accumulates in the identical per-element order, so falling back
  // changes nothing observable.
  if (flops_of(m, k, n) < 4096) {
    ref::matmul_nt_acc(m, n, k, g, b, c);
    return;
  }
  std::vector<float>& packed = pack_buffer();
  pack_panels_transposed(k, n, b, packed);
  const float* bp = packed.data();
  shard_rows(pool, m, flops_of(m, k, n), [&](int i0, int i1) {
    matmul_nt_rows(i0, i1, n, k, g, bp, c);
  });
}

void matmul_tn_acc(int m, int k, int n, const float* a, const float* g,
                   float* c, util::ThreadPool* pool) {
  if (m <= 0 || k <= 0 || n <= 0) return;
  shard_rows(pool, k, flops_of(m, k, n), [&](int k0, int k1) {
    matmul_tn_rows(k0, k1, m, k, n, a, g, c);
  });
}

void bias_act(int rows, int cols, const float* x, const float* bias, float* y,
              Activation act) {
  for (int i = 0; i < rows; ++i) {
    const float* xr = x + static_cast<std::size_t>(i) * cols;
    float* yr = y + static_cast<std::size_t>(i) * cols;
    switch (act) {
      case Activation::kIdentity:
        for (int j = 0; j < cols; ++j) yr[j] = xr[j] + bias[j];
        break;
      case Activation::kRelu:
        for (int j = 0; j < cols; ++j) {
          const float v = xr[j] + bias[j];
          yr[j] = v > 0.0F ? v : 0.0F;
        }
        break;
      case Activation::kTanh:
        for (int j = 0; j < cols; ++j) yr[j] = std::tanh(xr[j] + bias[j]);
        break;
    }
  }
}

void act_grad(std::size_t n, const float* g, const float* y, float* d,
              Activation act) {
  switch (act) {
    case Activation::kIdentity:
      if (d != g) std::copy(g, g + n, d);
      break;
    case Activation::kRelu:
      // y > 0 iff the pre-activation was > 0 (relu zeroes the rest).
      for (std::size_t i = 0; i < n; ++i) d[i] = y[i] > 0.0F ? g[i] : 0.0F;
      break;
    case Activation::kTanh:
      for (std::size_t i = 0; i < n; ++i) d[i] = g[i] * (1.0F - y[i] * y[i]);
      break;
  }
}

void col_sum_acc(int rows, int cols, const float* d, float* bias) {
  for (int i = 0; i < rows; ++i) {
    const float* dr = d + static_cast<std::size_t>(i) * cols;
    for (int j = 0; j < cols; ++j) bias[j] += dr[j];
  }
}

namespace ref {

void matmul_nn(int m, int k, int n, const float* a, const float* b,
               float* c) {
  std::fill(c, c + static_cast<std::size_t>(m) * n, 0.0F);
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float aik = a[static_cast<std::size_t>(i) * k + kk];
      if (aik == 0.0F) continue;
      const float* brow = b + static_cast<std::size_t>(kk) * n;
      float* crow = c + static_cast<std::size_t>(i) * n;
      for (int j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
}

void matmul_nt_acc(int m, int n, int k, const float* g, const float* b,
                   float* c) {
  for (int i = 0; i < m; ++i) {
    for (int j = 0; j < n; ++j) {
      const float gij = g[static_cast<std::size_t>(i) * n + j];
      if (gij == 0.0F) continue;
      for (int kk = 0; kk < k; ++kk) {
        c[static_cast<std::size_t>(i) * k + kk] +=
            gij * b[static_cast<std::size_t>(kk) * n + j];
      }
    }
  }
}

void matmul_tn_acc(int m, int k, int n, const float* a, const float* g,
                   float* c) {
  for (int i = 0; i < m; ++i) {
    for (int kk = 0; kk < k; ++kk) {
      const float aik = a[static_cast<std::size_t>(i) * k + kk];
      if (aik == 0.0F) continue;
      for (int j = 0; j < n; ++j) {
        c[static_cast<std::size_t>(kk) * n + j] +=
            aik * g[static_cast<std::size_t>(i) * n + j];
      }
    }
  }
}

}  // namespace ref

SegmentPlan build_segment_plan(std::vector<int> segments, int num_segments) {
  if (num_segments < 0) {
    throw std::invalid_argument("build_segment_plan: num_segments < 0");
  }
  for (int s : segments) {
    if (s < 0 || s >= num_segments) {
      throw std::invalid_argument("build_segment_plan: segment id out of "
                                  "range");
    }
  }
  SegmentPlan plan;
  plan.num_segments = num_segments;
  // Counting sort keeps rows ascending within each bucket, preserving the
  // naive addition order per segment.
  plan.offsets.assign(static_cast<std::size_t>(num_segments) + 1, 0);
  for (int s : segments) ++plan.offsets[static_cast<std::size_t>(s) + 1];
  for (int s = 0; s < num_segments; ++s) {
    plan.offsets[static_cast<std::size_t>(s) + 1] +=
        plan.offsets[static_cast<std::size_t>(s)];
  }
  plan.row_order.resize(segments.size());
  std::vector<int> cursor(plan.offsets.begin(), plan.offsets.end() - 1);
  for (std::size_t i = 0; i < segments.size(); ++i) {
    plan.row_order[static_cast<std::size_t>(
        cursor[static_cast<std::size_t>(segments[i])]++)] =
        static_cast<int>(i);
  }
  plan.segments = std::move(segments);
  return plan;
}

void segment_sum(const SegmentPlan& plan, int cols, const float* in,
                 float* out) {
  for (int s = 0; s < plan.num_segments; ++s) {
    float* orow = out + static_cast<std::size_t>(s) * cols;
    std::fill(orow, orow + cols, 0.0F);
    const int begin = plan.offsets[static_cast<std::size_t>(s)];
    const int end = plan.offsets[static_cast<std::size_t>(s) + 1];
    for (int idx = begin; idx < end; ++idx) {
      const float* irow =
          in + static_cast<std::size_t>(plan.row_order[
                   static_cast<std::size_t>(idx)]) * cols;
      for (int j = 0; j < cols; ++j) orow[j] += irow[j];
    }
  }
}

void segment_sum_grad(const SegmentPlan& plan, int cols, const float* g,
                      float* gin) {
  for (std::size_t i = 0; i < plan.segments.size(); ++i) {
    const float* grow =
        g + static_cast<std::size_t>(plan.segments[i]) * cols;
    float* irow = gin + i * static_cast<std::size_t>(cols);
    for (int j = 0; j < cols; ++j) irow[j] += grow[j];
  }
}

// ---------------------------------------------------------------------------
// TensorArena
// ---------------------------------------------------------------------------

int TensorArena::class_for_acquire(std::size_t n) {
  int cls = kMinClassLog2;
  while ((std::size_t{1} << cls) < n && cls < kClasses - 1) ++cls;
  return cls;
}

int TensorArena::class_for_release(std::size_t capacity) {
  int cls = kMinClassLog2;
  while ((std::size_t{1} << (cls + 1)) <= capacity && cls < kClasses - 1) {
    ++cls;
  }
  return cls;
}

Tensor TensorArena::take(std::size_t n) {
  const int cls = class_for_acquire(n);
  auto& bucket = free_[static_cast<std::size_t>(cls)];
  if (!bucket.empty()) {
    Tensor t = std::move(bucket.back());
    bucket.pop_back();
    ++reuse_;
    return t;
  }
  ++misses_;
  Tensor t;
  const std::size_t cap = std::max(n, std::size_t{1} << cls);
  t.reserve(cap);
  bytes_allocated_ += cap * sizeof(float);
  return t;
}

Tensor TensorArena::acquire(int rows, int cols) {
  const std::size_t n =
      static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
  if (n == 0) return Tensor(rows, cols);
  Tensor t = take(n);
  t.reshape_zero(rows, cols);
  return t;
}

Tensor TensorArena::acquire_copy(const Tensor& src) {
  if (src.size() == 0) return Tensor(src.rows(), src.cols());
  Tensor t = take(src.size());
  t.reshape_copy(src.rows(), src.cols(), src.data());
  return t;
}

void TensorArena::release(Tensor&& t) {
  if (t.capacity() < (std::size_t{1} << kMinClassLog2)) return;
  const int cls = class_for_release(t.capacity());
  free_[static_cast<std::size_t>(cls)].push_back(std::move(t));
}

}  // namespace gddr::nn::kernels
