#include "nn/serialize.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace gddr::nn {
namespace {

constexpr char kMagic[8] = {'G', 'D', 'D', 'R', 'P', 'A', 'R', 'M'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

template <typename T>
T read_pod(std::istream& is) {
  T value;
  is.read(reinterpret_cast<char*>(&value), sizeof value);
  if (!is) throw std::runtime_error("load_parameters: truncated file");
  return value;
}

}  // namespace

void save_parameters(const std::string& path,
                     std::span<Parameter* const> params) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) throw std::runtime_error("save_parameters: cannot open " + path);
  os.write(kMagic, sizeof kMagic);
  write_pod(os, kVersion);
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  for (const Parameter* p : params) {
    write_pod(os, static_cast<std::uint32_t>(p->value.rows()));
    write_pod(os, static_cast<std::uint32_t>(p->value.cols()));
    const auto data = p->value.data();
    os.write(reinterpret_cast<const char*>(data.data()),
             static_cast<std::streamsize>(data.size() * sizeof(float)));
  }
  if (!os) throw std::runtime_error("save_parameters: write failed");
}

void load_parameters(const std::string& path,
                     std::span<Parameter* const> params) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("load_parameters: cannot open " + path);
  char magic[8];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw std::runtime_error("load_parameters: bad magic in " + path);
  }
  const auto version = read_pod<std::uint32_t>(is);
  if (version != kVersion) {
    throw std::runtime_error("load_parameters: unsupported version");
  }
  const auto count = read_pod<std::uint64_t>(is);
  if (count != params.size()) {
    throw std::runtime_error(
        "load_parameters: file has " + std::to_string(count) +
        " parameters, destination expects " + std::to_string(params.size()));
  }
  for (Parameter* p : params) {
    const auto rows = read_pod<std::uint32_t>(is);
    const auto cols = read_pod<std::uint32_t>(is);
    if (rows != static_cast<std::uint32_t>(p->value.rows()) ||
        cols != static_cast<std::uint32_t>(p->value.cols())) {
      throw std::runtime_error("load_parameters: shape mismatch (file " +
                               std::to_string(rows) + "x" +
                               std::to_string(cols) + ", destination " +
                               p->value.shape_str() + ")");
    }
    auto data = p->value.data();
    is.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(float)));
    if (!is) throw std::runtime_error("load_parameters: truncated data");
  }
}

}  // namespace gddr::nn
