#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "util/crc32.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace gddr::nn {
namespace {

constexpr char kMagic[8] = {'G', 'D', 'D', 'R', 'P', 'A', 'R', 'M'};
constexpr char kCrcMagic[4] = {'C', 'R', 'C', 'S'};

using util::IoError;

}  // namespace

const char* to_string(Section section) {
  switch (section) {
    case Section::kParameters:
      return "parameters";
    case Section::kAdam:
      return "adam";
    case Section::kTrainer:
      return "trainer";
    case Section::kCollector:
      return "collector";
    case Section::kEnvs:
      return "envs";
  }
  return "unknown";
}

void read_bytes(std::istream& is, void* dst, std::size_t size,
                const std::string& field) {
  is.read(static_cast<char*>(dst), static_cast<std::streamsize>(size));
  if (!is) {
    throw IoError("truncated while reading field '" + field + "'");
  }
}

void write_tensor(std::ostream& os, const Tensor& t) {
  write_pod(os, static_cast<std::uint32_t>(t.rows()));
  write_pod(os, static_cast<std::uint32_t>(t.cols()));
  const auto data = t.data();
  os.write(reinterpret_cast<const char*>(data.data()),
           static_cast<std::streamsize>(data.size() * sizeof(float)));
}

Tensor read_tensor(std::istream& is, const std::string& field) {
  const auto rows = read_pod<std::uint32_t>(is, field + ".rows");
  const auto cols = read_pod<std::uint32_t>(is, field + ".cols");
  // Guard against absurd shapes from corrupt bytes before allocating.
  constexpr std::uint64_t kMaxElements = 1ULL << 28;
  if (static_cast<std::uint64_t>(rows) * cols > kMaxElements) {
    throw IoError("field '" + field + "' has implausible shape " +
                  std::to_string(rows) + "x" + std::to_string(cols) +
                  " (corrupt file?)");
  }
  Tensor t(static_cast<int>(rows), static_cast<int>(cols));
  auto data = t.data();
  read_bytes(is, data.data(), data.size() * sizeof(float), field + ".data");
  return t;
}

Tensor read_tensor_checked(std::istream& is, const Tensor& expected,
                           const std::string& field) {
  Tensor t = read_tensor(is, field);
  if (!t.same_shape(expected)) {
    throw IoError("field '" + field + "' shape mismatch (file " +
                  t.shape_str() + ", destination " + expected.shape_str() +
                  ")");
  }
  return t;
}

// ---- ContainerWriter ----

void ContainerWriter::add(Section id, std::string payload) {
  for (const auto& [existing, _] : sections_) {
    if (existing == id) {
      throw IoError(std::string("ContainerWriter: duplicate section '") +
                    to_string(id) + "'");
    }
  }
  sections_.emplace_back(id, std::move(payload));
}

void ContainerWriter::write(const std::string& path) const {
  std::ostringstream os(std::ios::binary);
  os.write(kMagic, sizeof kMagic);
  write_pod(os, kFormatVersionSectioned);
  write_pod(os, static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [id, payload] : sections_) {
    write_pod(os, static_cast<std::uint32_t>(id));
    write_pod(os, static_cast<std::uint64_t>(payload.size()));
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
  // Checksum trailer: one CRC32 per section, in on-disk order.  Readers
  // that predate the trailer stop after the declared sections and never
  // see it.
  os.write(kCrcMagic, sizeof kCrcMagic);
  write_pod(os, static_cast<std::uint32_t>(sections_.size()));
  for (const auto& [id, payload] : sections_) {
    write_pod(os, util::crc32(payload));
  }
  util::write_file_atomic(path, os.str());
}

// ---- ContainerReader ----

ContainerReader::ContainerReader(const std::string& path) : path_(path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw IoError("cannot open " + path);

  char magic[8];
  is.read(magic, sizeof magic);
  if (!is || std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
    throw IoError("bad magic in " + path + " (not a GDDRPARM file)");
  }
  version_ = read_pod<std::uint32_t>(is, "version");

  if (version_ == kFormatVersionLegacy) {
    // v1: everything after the version field is the parameter body.
    std::ostringstream body(std::ios::binary);
    body << is.rdbuf();
    sections_.emplace_back(Section::kParameters, body.str());
    return;
  }
  if (version_ != kFormatVersionSectioned) {
    throw IoError("unsupported version " + std::to_string(version_) + " in " +
                  path + " (supported: 1, 2)");
  }

  const auto count = read_pod<std::uint32_t>(is, "section count");
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::string label = "section " + std::to_string(i);
    const auto id = read_pod<std::uint32_t>(is, label + ".id");
    const auto size = read_pod<std::uint64_t>(is, label + ".size");
    std::string payload(static_cast<std::size_t>(size), '\0');
    read_bytes(is, payload.data(), payload.size(), label + ".payload");
    sections_.emplace_back(static_cast<Section>(id), std::move(payload));
  }

  // Checksum trailer (optional for backward compatibility): EOF right
  // after the last section is a legacy unchecksummed v2 file; anything
  // else must be a complete, matching trailer.
  char trailer_magic[4];
  is.read(trailer_magic, sizeof trailer_magic);
  if (is.gcount() == 0) return;  // unchecksummed v2 (pre-trailer writer)
  if (is.gcount() != sizeof trailer_magic ||
      std::memcmp(trailer_magic, kCrcMagic, sizeof kCrcMagic) != 0) {
    throw IoError("corrupt checksum trailer in " + path +
                  " (expected 'CRCS' magic after the last section)");
  }
  const auto crc_count = read_pod<std::uint32_t>(is, "checksum count");
  if (crc_count != count) {
    throw IoError("checksum trailer in " + path + " covers " +
                  std::to_string(crc_count) + " sections, file declares " +
                  std::to_string(count));
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto& [id, payload] = sections_[i];
    const auto stored =
        read_pod<std::uint32_t>(is, std::string("checksum of section '") +
                                        to_string(id) + "'");
    const std::uint32_t actual = util::crc32(payload);
    if (stored != actual) {
      throw IoError(std::string("checksum mismatch in section '") +
                    to_string(id) + "' of " + path +
                    " (file corrupt: stored crc32 " + std::to_string(stored) +
                    ", payload has " + std::to_string(actual) + ")");
    }
  }
}

bool ContainerReader::has(Section id) const {
  for (const auto& [existing, _] : sections_) {
    if (existing == id) return true;
  }
  return false;
}

const std::string& ContainerReader::payload(Section id) const {
  for (const auto& [existing, payload] : sections_) {
    if (existing == id) return payload;
  }
  throw IoError(std::string("missing section '") + to_string(id) + "' in " +
                path_);
}

// ---- parameter payloads ----

std::string parameters_payload(std::span<Parameter* const> params) {
  std::ostringstream os(std::ios::binary);
  write_pod(os, static_cast<std::uint64_t>(params.size()));
  for (const Parameter* p : params) write_tensor(os, p->value);
  return os.str();
}

void load_parameters_payload(const std::string& payload,
                             std::span<Parameter* const> params,
                             const std::string& context) {
  std::istringstream is(payload, std::ios::binary);
  try {
    const auto count = read_pod<std::uint64_t>(is, "parameter count");
    if (count != params.size()) {
      throw IoError("file has " + std::to_string(count) +
                    " parameters, destination expects " +
                    std::to_string(params.size()));
    }
    // Stage every tensor before touching any destination: a throw below
    // leaves `params` exactly as they were.
    std::vector<Tensor> staged;
    staged.reserve(params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
      staged.push_back(read_tensor_checked(
          is, params[i]->value, "parameter " + std::to_string(i)));
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i]->value = std::move(staged[i]);
    }
  } catch (const IoError& ex) {
    throw IoError(context + ": " + ex.what());
  }
}

// ---- public entry points ----

void save_parameters(const std::string& path,
                     std::span<Parameter* const> params) {
  ContainerWriter writer;
  writer.add(Section::kParameters, parameters_payload(params));
  try {
    writer.write(path);
  } catch (const IoError& ex) {
    throw IoError(std::string("save_parameters: ") + ex.what());
  }
}

void load_parameters(const std::string& path,
                     std::span<Parameter* const> params) {
  try {
    const ContainerReader reader(path);
    load_parameters_payload(reader.payload(Section::kParameters), params,
                            "parameters");
  } catch (const IoError& ex) {
    throw IoError(std::string("load_parameters: ") + ex.what());
  }
}

}  // namespace gddr::nn
