#include "nn/mlp.hpp"

#include <cmath>
#include <stdexcept>

namespace gddr::nn {

Mlp::Mlp(int in, int out, const MlpConfig& config, util::Rng& rng)
    : in_(in), out_(out), config_(config) {
  if (in <= 0 || out <= 0) throw std::invalid_argument("Mlp: bad sizes");
  for (int h : config.hidden) {
    if (h <= 0) throw std::invalid_argument("Mlp: bad hidden size");
  }
  std::vector<int> sizes;
  sizes.push_back(in);
  for (int h : config.hidden) sizes.push_back(h);
  sizes.push_back(out);
  for (size_t l = 0; l + 1 < sizes.size(); ++l) {
    const int fan_in = sizes[l];
    const int fan_out = sizes[l + 1];
    Tensor w(fan_in, fan_out);
    const double bound = std::sqrt(6.0 / (fan_in + fan_out));
    w.fill_uniform(rng, bound);
    if (l + 2 == sizes.size() && config_.output_scale != 1.0) {
      w.scale_in_place(static_cast<float>(config_.output_scale));
    }
    weights_.emplace_back(std::move(w));
    biases_.emplace_back(Tensor(1, fan_out));
  }
}

Tape::Var Mlp::forward(Tape& tape, Tape::Var x) {
  if (tape.value(x).cols() != in_) {
    throw std::invalid_argument("Mlp::forward: input has " +
                                tape.value(x).shape_str() + ", expected cols " +
                                std::to_string(in_));
  }
  Tape::Var h = x;
  for (size_t l = 0; l < weights_.size(); ++l) {
    const bool last = (l + 1 == weights_.size());
    // One fused node per layer: matmul + bias + activation forward, and a
    // transpose-free backward that touches each buffer once.
    h = tape.linear(h, tape.leaf(weights_[l]), tape.leaf(biases_[l]),
                    last ? config_.output_activation
                         : config_.hidden_activation);
  }
  return h;
}

std::vector<Parameter*> Mlp::parameters() {
  std::vector<Parameter*> params;
  params.reserve(weights_.size() * 2);
  for (size_t l = 0; l < weights_.size(); ++l) {
    params.push_back(&weights_[l]);
    params.push_back(&biases_[l]);
  }
  return params;
}

std::size_t Mlp::num_parameters() const {
  std::size_t total = 0;
  for (const auto& w : weights_) total += w.size();
  for (const auto& b : biases_) total += b.size();
  return total;
}

}  // namespace gddr::nn
