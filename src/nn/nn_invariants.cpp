#include "nn/nn_invariants.hpp"

#include "util/contract.hpp"

namespace gddr::nn {

using util::contract::describe;
using util::contract::violate_invariant;

void check_finite(const Tensor& t, std::string_view label) {
  const auto bad = util::contract::first_nonfinite(t.data());
  if (!bad.has_value()) return;
  violate_invariant("tensor is finite", label,
                    describe("shape", t.shape_str(), "index", *bad, "value",
                             t.data()[*bad]));
}

void check_grad_shape(const Tensor& value, const Tensor& grad,
                      std::string_view label) {
  if (grad.same_shape(value)) return;
  violate_invariant("gradient shape matches value shape", label,
                    describe("value_shape", value.shape_str(), "grad_shape",
                             grad.shape_str()));
}

}  // namespace gddr::nn
