// Parameter and checkpoint (de)serialisation.
//
// Container format (little-endian binary), magic "GDDRPARM":
//
//  * version 1 (legacy, still loadable): u32 version, u64 parameter
//    count, then per parameter {u32 rows, u32 cols, f32 data...}.
//  * version 2 (written now): u32 version, u32 section count, then per
//    section {u32 section id, u64 payload bytes, payload}.  A plain
//    parameter file is a v2 container with a single kParameters section
//    whose payload is exactly the v1 body; trainer checkpoints add Adam
//    moments, RNG streams, trainer counters, collector slots and env
//    states as further sections (see rl/checkpoint.hpp).
//
// Bit-rot detection: v2 files written now end with a checksum trailer —
// magic "CRCS", u32 count (must equal the section count), then one
// util::crc32 per section payload in on-disk order.  The reader verifies
// every checksum up front and names the corrupted *section* on mismatch,
// instead of surfacing whatever parse error the flipped byte happens to
// cause deep inside the payload.  v2 files without the trailer (written
// before this extension) still load — a file ending exactly after its
// last section is accepted as unchecksummed — and old readers ignore the
// trailer because they never read past the declared sections.
//
// Safety properties:
//  * writes are crash-safe (tmp + fsync + rename via
//    util::write_file_atomic) — a crash mid-save leaves the previous
//    file intact;
//  * loads are staged — every byte is parsed and validated into
//    temporaries before the first destination parameter is touched, so a
//    corrupted/truncated/mismatched file throws (naming the offending
//    field) and never half-loads;
//  * loading validates every shape against the destination parameters,
//    so a mismatched architecture fails loudly instead of silently
//    corrupting.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "nn/tensor.hpp"

namespace gddr::nn {

inline constexpr std::uint32_t kFormatVersionLegacy = 1;
inline constexpr std::uint32_t kFormatVersionSectioned = 2;

// Section ids of the v2 container.  Values are stable on-disk identifiers.
enum class Section : std::uint32_t {
  kParameters = 1,  // model weights (v1 body layout)
  kAdam = 2,        // optimiser step count + first/second moments
  kTrainer = 3,     // PPO RNG stream, counters, learning rate
  kCollector = 4,   // per-env collector slots (RNG, pending observation)
  kEnvs = 5,        // opaque per-env state blobs (Env::save_state)
};

const char* to_string(Section section);

// ---- low-level primitives (shared with rl/checkpoint.cpp) ----

// Writes a trivially-copyable value raw.
template <typename T>
void write_pod(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof value);
}

// Reads a trivially-copyable value; throws util::IoError naming `field`
// on a short read.
void read_bytes(std::istream& is, void* dst, std::size_t size,
                const std::string& field);

template <typename T>
T read_pod(std::istream& is, const std::string& field) {
  T value;
  read_bytes(is, &value, sizeof value, field);
  return value;
}

// Tensor payload: u32 rows, u32 cols, f32 data.  read_tensor builds a
// fresh tensor of the stored shape; read_tensor_checked additionally
// requires the stored shape to match `expected` and throws naming
// `field` otherwise.
void write_tensor(std::ostream& os, const Tensor& t);
Tensor read_tensor(std::istream& is, const std::string& field);
Tensor read_tensor_checked(std::istream& is, const Tensor& expected,
                           const std::string& field);

// ---- v2 sectioned container ----

class ContainerWriter {
 public:
  // Adds a section (ids must be unique; order is preserved on disk).
  void add(Section id, std::string payload);

  // Serialises and writes the container crash-safely.  Throws
  // util::IoError on I/O failure (including injected ckpt_write faults).
  void write(const std::string& path) const;

 private:
  std::vector<std::pair<Section, std::string>> sections_;
};

class ContainerReader {
 public:
  // Reads and validates the whole file up front.  Accepts v1 (the body
  // is surfaced as a single kParameters section) and v2.  Throws
  // util::IoError on missing/corrupt/unsupported files, naming what was
  // being read.
  explicit ContainerReader(const std::string& path);

  std::uint32_t version() const { return version_; }
  bool has(Section id) const;
  // Payload bytes of `id`; throws util::IoError naming the section when
  // absent.
  const std::string& payload(Section id) const;

 private:
  std::string path_;
  std::uint32_t version_ = 0;
  std::vector<std::pair<Section, std::string>> sections_;
};

// ---- parameter payloads ----

// v1-body layout: u64 count, then {u32 rows, u32 cols, f32 data} each.
std::string parameters_payload(std::span<Parameter* const> params);

// Parses and validates the payload fully (count and every shape against
// `params`), then commits — on any throw the destination is untouched.
void load_parameters_payload(const std::string& payload,
                             std::span<Parameter* const> params,
                             const std::string& context);

// ---- public entry points ----

// Writes every parameter's current values (v2 container, atomic).
// Throws util::IoError on I/O failure.
void save_parameters(const std::string& path,
                     std::span<Parameter* const> params);

// Reads values saved by save_parameters (either format version) into
// `params`.  Throws util::IoError on I/O failure, format mismatch, wrong
// parameter count or any shape mismatch; never half-loads.
void load_parameters(const std::string& path,
                     std::span<Parameter* const> params);

}  // namespace gddr::nn
