// Parameter (de)serialisation: save a trained policy to disk and load it
// back into a freshly constructed policy of the same architecture.
//
// Format (little-endian binary): magic "GDDRPARM", u32 version, u64
// parameter count, then per parameter {u32 rows, u32 cols, f32 data...}.
// Loading validates every shape against the destination parameters, so a
// mismatched architecture fails loudly instead of silently corrupting.
#pragma once

#include <span>
#include <string>

#include "nn/tensor.hpp"

namespace gddr::nn {

// Writes every parameter's current values.  Throws std::runtime_error on
// I/O failure.
void save_parameters(const std::string& path,
                     std::span<Parameter* const> params);

// Reads values saved by save_parameters into `params`.  Throws
// std::runtime_error on I/O failure, format mismatch, wrong parameter
// count or any shape mismatch.
void load_parameters(const std::string& path,
                     std::span<Parameter* const> params);

}  // namespace gddr::nn
