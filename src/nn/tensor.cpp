#include "nn/tensor.hpp"

#include <cmath>
#include <stdexcept>

namespace gddr::nn {

Tensor::Tensor(int rows, int cols)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0F) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("negative shape");
}

Tensor::Tensor(int rows, int cols, float fill_value) : Tensor(rows, cols) {
  fill(fill_value);
}

Tensor Tensor::row(std::span<const double> values) {
  Tensor t(1, static_cast<int>(values.size()));
  for (size_t i = 0; i < values.size(); ++i) {
    t.data_[i] = static_cast<float>(values[i]);
  }
  return t;
}

Tensor Tensor::row(std::initializer_list<float> values) {
  Tensor t(1, static_cast<int>(values.size()));
  size_t i = 0;
  for (float v : values) t.data_[i++] = v;
  return t;
}

Tensor Tensor::zeros_like(const Tensor& other) {
  return Tensor(other.rows_, other.cols_);
}

std::string Tensor::shape_str() const {
  return "[" + std::to_string(rows_) + "x" + std::to_string(cols_) + "]";
}

void Tensor::reshape_zero(int rows, int cols) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("negative shape");
  rows_ = rows;
  cols_ = cols;
  data_.assign(static_cast<size_t>(rows) * static_cast<size_t>(cols), 0.0F);
}

void Tensor::reshape_copy(int rows, int cols, std::span<const float> src) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("negative shape");
  if (src.size() != static_cast<size_t>(rows) * static_cast<size_t>(cols)) {
    throw std::invalid_argument("reshape_copy: size mismatch");
  }
  rows_ = rows;
  cols_ = cols;
  data_.assign(src.begin(), src.end());
}

void Tensor::fill(float value) {
  for (float& v : data_) v = value;
}

void Tensor::add_in_place(const Tensor& other) {
  if (!same_shape(other)) {
    throw std::invalid_argument("add_in_place: shape mismatch " +
                                shape_str() + " vs " + other.shape_str());
  }
  for (size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::scale_in_place(float factor) {
  for (float& v : data_) v *= factor;
}

double Tensor::squared_norm() const {
  double sum = 0.0;
  for (float v : data_) sum += static_cast<double>(v) * v;
  return sum;
}

void Tensor::fill_uniform(util::Rng& rng, double bound) {
  for (float& v : data_) {
    v = static_cast<float>(rng.uniform(-bound, bound));
  }
}

}  // namespace gddr::nn
