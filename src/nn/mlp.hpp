// Multilayer perceptron module (paper Fig. 4; also the phi update
// functions inside every graph-network block, §VII-A).
#pragma once

#include <vector>

#include "nn/kernels.hpp"
#include "nn/tape.hpp"
#include "util/rng.hpp"

namespace gddr::nn {
// Activation is defined in nn/kernels.hpp (the fused linear kernel
// consumes it); re-exported here for existing includers.

struct MlpConfig {
  std::vector<int> hidden{64, 64};
  Activation hidden_activation = Activation::kTanh;
  Activation output_activation = Activation::kIdentity;
  // Final layer weights are multiplied by this after init; PPO policy
  // heads conventionally use a small value (e.g. 0.01) so initial actions
  // stay near zero.
  double output_scale = 1.0;
};

class Mlp {
 public:
  // Xavier-uniform initialised MLP mapping R^{in} -> R^{out} per row.
  Mlp(int in, int out, const MlpConfig& config, util::Rng& rng);

  // Applies the network to every row of x (N x in -> N x out).
  Tape::Var forward(Tape& tape, Tape::Var x);

  std::vector<Parameter*> parameters();
  std::size_t num_parameters() const;

  int input_size() const { return in_; }
  int output_size() const { return out_; }

 private:
  int in_;
  int out_;
  MlpConfig config_;
  std::vector<Parameter> weights_;
  std::vector<Parameter> biases_;
};

}  // namespace gddr::nn
