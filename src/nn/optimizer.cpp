#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace gddr::nn {

void Sgd::step(std::span<Parameter* const> params) {
  for (Parameter* p : params) {
    auto v = p->value.data();
    const auto g = p->grad.data();
    for (size_t i = 0; i < v.size(); ++i) {
      v[i] -= static_cast<float>(lr_) * g[i];
    }
  }
}

Adam::Adam(double lr, double beta1, double beta2, double eps)
    : lr_(lr), beta1_(beta1), beta2_(beta2), eps_(eps) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr <= 0");
  // Betas must lie in [0, 1): at beta == 1 the bias correction
  // 1 - beta^t is exactly 0 and the very first step divides by zero,
  // producing NaN/Inf parameters with no diagnostic.  (For any beta < 1,
  // pow(beta, t) decays towards 0 as t grows, so the correction tends to
  // 1 — large restored step counts are safe, never a division hazard.)
  if (!(beta1 >= 0.0 && beta1 < 1.0)) {
    throw std::invalid_argument("Adam: beta1 outside [0, 1)");
  }
  if (!(beta2 >= 0.0 && beta2 < 1.0)) {
    throw std::invalid_argument("Adam: beta2 outside [0, 1)");
  }
  if (!(eps > 0.0)) throw std::invalid_argument("Adam: eps <= 0");
}

void Adam::step(std::span<Parameter* const> params) {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Parameter* p : params) {
    auto [it, inserted] = slots_.try_emplace(
        p, Slot{Tensor::zeros_like(p->value), Tensor::zeros_like(p->value)});
    Slot& slot = it->second;
    auto v = p->value.data();
    const auto g = p->grad.data();
    auto m1 = slot.m.data();
    auto m2 = slot.v.data();
    for (size_t i = 0; i < v.size(); ++i) {
      m1[i] = static_cast<float>(beta1_ * m1[i] + (1.0 - beta1_) * g[i]);
      m2[i] = static_cast<float>(beta2_ * m2[i] +
                                 (1.0 - beta2_) * g[i] * g[i]);
      const double mhat = m1[i] / bc1;
      const double vhat = m2[i] / bc2;
      v[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

void Adam::set_learning_rate(double lr) {
  if (lr <= 0.0) throw std::invalid_argument("Adam: lr <= 0");
  lr_ = lr;
}

Adam::State Adam::export_state(std::span<Parameter* const> params) const {
  State state;
  state.t = t_;
  state.m.reserve(params.size());
  state.v.reserve(params.size());
  for (Parameter* p : params) {
    const auto it = slots_.find(p);
    if (it == slots_.end()) {
      state.m.push_back(Tensor::zeros_like(p->value));
      state.v.push_back(Tensor::zeros_like(p->value));
    } else {
      state.m.push_back(it->second.m);
      state.v.push_back(it->second.v);
    }
  }
  return state;
}

void Adam::import_state(const State& state,
                        std::span<Parameter* const> params) {
  if (state.m.size() != params.size() || state.v.size() != params.size()) {
    throw std::runtime_error(
        "Adam::import_state: state holds " + std::to_string(state.m.size()) +
        " moment pairs, destination expects " +
        std::to_string(params.size()));
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    if (!state.m[i].same_shape(params[i]->value) ||
        !state.v[i].same_shape(params[i]->value)) {
      throw std::runtime_error(
          "Adam::import_state: moment shape mismatch for parameter " +
          std::to_string(i));
    }
  }
  t_ = state.t;
  slots_.clear();
  for (std::size_t i = 0; i < params.size(); ++i) {
    slots_.emplace(params[i], Slot{state.m[i], state.v[i]});
  }
}

void zero_grads(std::span<Parameter* const> params) {
  for (Parameter* p : params) p->zero_grad();
}

double global_grad_norm(std::span<Parameter* const> params) {
  double sum = 0.0;
  for (const Parameter* p : params) sum += p->grad.squared_norm();
  return std::sqrt(sum);
}

double clip_grad_norm(std::span<Parameter* const> params, double max_norm) {
  const double norm = global_grad_norm(params);
  if (norm > max_norm && norm > 0.0) {
    const float factor = static_cast<float>(max_norm / norm);
    for (Parameter* p : params) p->grad.scale_in_place(factor);
  }
  return norm;
}

}  // namespace gddr::nn
