// Optimized tensor kernels + the tape workspace arena.
//
// This is the performance substrate under nn::Tape: register-blocked,
// cache-tiled matmul kernels (with separate NT / TN variants so matmul's
// backward never materializes an explicit transpose), a fused
// bias+activation kernel, a bucketed segment-sum that builds a reusable
// per-topology plan, and a size-class tensor pool (TensorArena) that lets
// a long-lived Tape recycle every value/grad buffer across iterations.
//
// Determinism contract (load-bearing — tests assert it):
//
//  * Every kernel accumulates each output element along a single
//    dependency chain in the same index order as the naive reference
//    triple loop (k ascending for NN, the shared dim ascending for
//    NT/TN, row-ascending within a segment bucket).  Tiling, packing and
//    register blocking change only the *iteration* order, never the
//    per-element *accumulation* order, so results are bit-identical to
//    the reference kernels in `kernels::ref`.
//  * Multi-threaded variants shard disjoint output rows across the
//    util::ThreadPool; each element is still computed entirely by one
//    task with the serial inner loop, so results are bit-identical for
//    any worker count (and the split is skipped below a flop threshold
//    or when the pool is inline, matching rl::VecEnvCollector semantics).
//
// The reference kernels are exported so tests and bench_gnn_micro can
// assert optimized == reference exactly.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "nn/tensor.hpp"

namespace gddr::util {
class ThreadPool;
}  // namespace gddr::util

namespace gddr::nn {

// Activation functions applied by the fused linear kernel (historically
// defined in mlp.hpp; it lives here so tape/kernels need not depend on
// the MLP module).
enum class Activation { kIdentity, kRelu, kTanh };

namespace kernels {

// ---------------------------------------------------------------------------
// Matmul family.  All matrices are dense row-major float with leading
// dimension equal to their column count.  `pool` may be null (serial).
// ---------------------------------------------------------------------------

// C (m x n) = A (m x k) * B (k x n).  C must not alias A or B.
void matmul_nn(int m, int k, int n, const float* a, const float* b, float* c,
               util::ThreadPool* pool = nullptr);

// C (m x k) += G (m x n) * B^T with B stored (k x n) — the dA term of
// matmul's backward, consuming B in its natural layout.
void matmul_nt_acc(int m, int n, int k, const float* g, const float* b,
                   float* c, util::ThreadPool* pool = nullptr);

// C (k x n) += A^T * G with A stored (m x k), G stored (m x n) — the dB
// term of matmul's backward.
void matmul_tn_acc(int m, int k, int n, const float* a, const float* g,
                   float* c, util::ThreadPool* pool = nullptr);

// Fused y[r][c] = act(x[r][c] + bias[c]); bias is 1 x cols.  In-place
// (y == x) is supported; partial overlap is not.
void bias_act(int rows, int cols, const float* x, const float* bias, float* y,
              Activation act);

// d[i] = g[i] * act'(pre[i]) expressed via the post-activation value y[i]
// (sufficient for kIdentity / kRelu / kTanh).  In-place (d == g) is
// supported; partial overlap is not.
void act_grad(std::size_t n, const float* g, const float* y, float* d,
              Activation act);

// bias (1 x cols) += column sums of d (rows x cols).
void col_sum_acc(int rows, int cols, const float* d, float* bias);

// Minimum m*k*n before a matmul shards rows across the pool; below this
// the fan-out overhead exceeds the kernel cost.
constexpr std::size_t kParallelMinFlops = 1U << 18U;
// Output rows per parallel task.  The task decomposition depends only on
// the matrix shape — never on the worker count — so the assignment of
// elements to accumulation chains is fixed.
constexpr int kRowsPerTask = 16;

// Naive reference kernels (the seed's triple loops, zero-skip included).
// Exported for equivalence tests and the bench_gnn_micro --json smoke.
namespace ref {
void matmul_nn(int m, int k, int n, const float* a, const float* b, float* c);
void matmul_nt_acc(int m, int n, int k, const float* g, const float* b,
                   float* c);
void matmul_tn_acc(int m, int k, int n, const float* a, const float* g,
                   float* c);
}  // namespace ref

// ---------------------------------------------------------------------------
// Bucketed segment sum.  The plan groups row indices by segment id once
// per graph topology; forward calls then stream each bucket without
// re-scanning the id vector, and the plan is shared across every forward
// pass on that topology (gnn::GraphSpec caches it).
// ---------------------------------------------------------------------------

struct SegmentPlan {
  int num_segments = 0;
  // Original per-row segment ids (backward scatter needs them unsorted).
  std::vector<int> segments;
  // Row indices grouped by segment, ascending within each bucket — the
  // same addition order as the naive unsorted scan, so forward sums are
  // bit-identical.
  std::vector<int> row_order;
  // Bucket boundaries into row_order; size num_segments + 1.  Segments
  // with no rows (empty buckets) have offsets[s] == offsets[s + 1].
  std::vector<int> offsets;

  int num_rows() const { return static_cast<int>(segments.size()); }
};

// Validates ids in [0, num_segments) and buckets them (counting sort, one
// pass).  Throws std::invalid_argument on an out-of-range id.
SegmentPlan build_segment_plan(std::vector<int> segments, int num_segments);

// out (num_segments x cols) = per-segment sums of in (num_rows x cols);
// out is overwritten (empty segments become zero rows).
void segment_sum(const SegmentPlan& plan, int cols, const float* in,
                 float* out);

// gin (num_rows x cols) += g[segments[i]] for every row i.
void segment_sum_grad(const SegmentPlan& plan, int cols, const float* g,
                      float* gin);

// ---------------------------------------------------------------------------
// TensorArena: a size-class pool of tensor buffers.  acquire() hands out a
// zero-filled tensor whose heap storage comes from the pool when a buffer
// of the right class is free; release() returns storage to the pool
// without freeing it.  A Tape drains its nodes into its arena at reset(),
// so steady-state forward/backward passes perform no heap allocation —
// the miss/reuse counters (surfaced as the nn/arena_bytes and
// nn/arena_reuse obs gauges) prove it.
//
// Not thread-safe: each Tape owns one arena and tapes are thread-private.
// ---------------------------------------------------------------------------

class TensorArena {
 public:
  // Zero-filled rows x cols tensor; reuses pooled storage when available.
  Tensor acquire(int rows, int cols);
  // Same-shaped copy of src (contents copied, not zeroed first).
  Tensor acquire_copy(const Tensor& src);
  // Returns t's storage to the pool.  Empty tensors are dropped.
  void release(Tensor&& t);

  // Cumulative bytes of fresh heap storage this arena allocated (misses
  // only — reuse adds nothing).  Steady state: flat.
  std::size_t bytes_allocated() const { return bytes_allocated_; }
  // Number of acquires served from the pool / from fresh allocations.
  std::uint64_t reuse_count() const { return reuse_; }
  std::uint64_t miss_count() const { return misses_; }

 private:
  static constexpr int kClasses = 32;
  // Smallest pooled class: 2^6 = 64 floats (256 B).
  static constexpr int kMinClassLog2 = 6;

  // Smallest class whose capacity covers n elements.
  static int class_for_acquire(std::size_t n);
  // Largest class a buffer of this capacity can serve (floor log2), so a
  // tensor released here always satisfies acquires from its class.
  static int class_for_release(std::size_t capacity);

  Tensor take(std::size_t n);

  std::array<std::vector<Tensor>, kClasses> free_;
  std::size_t bytes_allocated_ = 0;
  std::uint64_t reuse_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace kernels
}  // namespace gddr::nn
