// Diagonal-Gaussian action distribution for continuous-control PPO.
//
// The policy networks output per-dimension means; a state-independent
// learnable log-standard-deviation parameter provides exploration noise
// (the stable-baselines PPO2 convention the paper trained with).
#pragma once

#include <vector>

#include "nn/tape.hpp"
#include "util/rng.hpp"

namespace gddr::nn {

// log_std is clamped to [kLogStdMin, kLogStdMax] everywhere a density or
// a sample is computed: below the floor sigma = exp(log_std) underflows
// towards 0 and z = (a - mean)/sigma turns log-probs (and their
// gradients) into inf/NaN that the training watchdog only catches after
// the fact.  exp(-10) ~ 4.5e-5 keeps the smallest sigma harmless at
// float precision, exp(2) ~ 7.4 bounds exploration noise.  The sampler,
// the on-tape log-prob and rl::action_log_prob share the same clamp so
// PPO's importance ratios stay consistent; the entropy bonus is left
// unclamped so its gradient can still pull an out-of-range log_std back.
constexpr double kLogStdMin = -10.0;
constexpr double kLogStdMax = 2.0;

// Samples a ~ N(mean, diag(exp(log_std))^2).  mean and log_std must have
// the same length; log_std is clamped to [kLogStdMin, kLogStdMax].
std::vector<double> sample_diag_gaussian(std::span<const double> mean,
                                         std::span<const double> log_std,
                                         util::Rng& rng);

// Log-density of `actions` (N x A constant) under N(mean, exp(log_std)),
// where `mean` is an on-tape N x A Var and `log_std` an on-tape N x A Var
// (broadcast the 1 x A parameter with Tape::broadcast_rows).  Returns an
// N x 1 Var of per-row log-probabilities (summed over action dims).
// log_std enters through clip(log_std, kLogStdMin, kLogStdMax), so the
// result is finite for any finite inputs (zero gradient to log_std at the
// clamped extremes, matching the clamped density).
Tape::Var diag_gaussian_log_prob(Tape& tape, Tape::Var mean,
                                 Tape::Var log_std, const Tensor& actions);

// Mean (over batch rows) entropy of the distribution, a 1x1 Var:
// H = sum_j (log sigma_j + 0.5 log(2 pi e)).
Tape::Var diag_gaussian_entropy(Tape& tape, Tape::Var log_std);

}  // namespace gddr::nn
