// Dense row-major 2-D float tensor: the numeric workhorse under the
// autodiff tape, the MLP and GNN modules, and PPO.
//
// Everything in this reproduction is small (hidden sizes of tens, graphs
// of tens of nodes), so a simple contiguous matrix with naive kernels is
// both sufficient and cache-friendly; no BLAS dependency is needed.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace gddr::nn {

class Tensor {
 public:
  Tensor() = default;
  Tensor(int rows, int cols);
  Tensor(int rows, int cols, float fill);
  // 1 x values.size() row vector.
  static Tensor row(std::span<const double> values);
  static Tensor row(std::initializer_list<float> values);
  static Tensor zeros_like(const Tensor& other);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool same_shape(const Tensor& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }
  std::string shape_str() const;

  float& at(int r, int c) {
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }
  float at(int r, int c) const {
    return data_[static_cast<size_t>(r) * static_cast<size_t>(cols_) +
                 static_cast<size_t>(c)];
  }

  std::span<float> data() { return data_; }
  std::span<const float> data() const { return data_; }

  // Heap capacity of the backing store in floats.  The tensor pool
  // (kernels::TensorArena) classifies recycled buffers by this.
  std::size_t capacity() const { return data_.capacity(); }
  // Grows the backing store without changing the logical shape.
  void reserve(std::size_t n) { data_.reserve(n); }
  // Reshapes to rows x cols, zero-filled, reusing the existing backing
  // store when its capacity suffices (no allocation in that case).
  void reshape_zero(int rows, int cols);
  // Reshapes to rows x cols and copies `src` (size rows*cols) into the
  // backing store, again reusing capacity when possible.
  void reshape_copy(int rows, int cols, std::span<const float> src);

  void fill(float value);
  void add_in_place(const Tensor& other);
  void scale_in_place(float factor);

  // Frobenius-norm squared of the tensor (for gradient clipping).
  double squared_norm() const;

  // Fills with U(-bound, bound).
  void fill_uniform(util::Rng& rng, double bound);

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<float> data_;
};

// value = learnable weights, grad = accumulated gradient (same shape).
struct Parameter {
  Tensor value;
  Tensor grad;

  explicit Parameter(Tensor initial)
      : value(std::move(initial)), grad(Tensor::zeros_like(value)) {}
  std::size_t size() const { return value.size(); }
  void zero_grad() { grad.fill(0.0F); }
};

}  // namespace gddr::nn
