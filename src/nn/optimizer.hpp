// Gradient-descent optimisers over Parameter sets.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "nn/tensor.hpp"

namespace gddr::nn {

class Optimizer {
 public:
  virtual ~Optimizer() = default;
  // Applies one update using each parameter's accumulated gradient.
  virtual void step(std::span<Parameter* const> params) = 0;
};

// Plain SGD (used in tests as a reference).
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double lr) : lr_(lr) {}
  void step(std::span<Parameter* const> params) override;

 private:
  double lr_;
};

// Adam (Kingma & Ba); the optimiser behind stable-baselines PPO2.
class Adam final : public Optimizer {
 public:
  explicit Adam(double lr, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8);
  void step(std::span<Parameter* const> params) override;

  // The learning rate is mutable at runtime: the numerical-health
  // watchdog shrinks it after a NaN/Inf rollback.
  double learning_rate() const { return lr_; }
  void set_learning_rate(double lr);

  long step_count() const { return t_; }

  // Complete optimiser state for checkpoint/resume and watchdog
  // rollback.  Moments are ordered like the `params` span passed in;
  // parameters never stepped yet export zero moments.  Resuming Adam
  // without (m, v, t) silently restarts the bias correction and moment
  // accumulation — the resumed run would diverge from the uninterrupted
  // one on the very first update.
  struct State {
    long t = 0;
    std::vector<Tensor> m;
    std::vector<Tensor> v;
  };
  State export_state(std::span<Parameter* const> params) const;
  // Shapes must match each parameter; throws std::runtime_error naming
  // the offending parameter index otherwise (destination untouched).
  void import_state(const State& state, std::span<Parameter* const> params);

 private:
  struct Slot {
    Tensor m;
    Tensor v;
  };
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  long t_ = 0;
  std::unordered_map<Parameter*, Slot> slots_;
};

// Zeroes every parameter's gradient.
void zero_grads(std::span<Parameter* const> params);

// Global L2 norm of all gradients.
double global_grad_norm(std::span<Parameter* const> params);

// Scales gradients so the global norm is at most max_norm; returns the
// pre-clip norm.
double clip_grad_norm(std::span<Parameter* const> params, double max_norm);

}  // namespace gddr::nn
