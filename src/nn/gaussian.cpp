#include "nn/gaussian.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gddr::nn {

namespace {
constexpr double kLogSqrt2Pi = 0.9189385332046727;  // 0.5 * log(2*pi)
}

std::vector<double> sample_diag_gaussian(std::span<const double> mean,
                                         std::span<const double> log_std,
                                         util::Rng& rng) {
  if (mean.size() != log_std.size()) {
    throw std::invalid_argument("sample_diag_gaussian: size mismatch");
  }
  std::vector<double> out(mean.size());
  for (size_t i = 0; i < mean.size(); ++i) {
    const double ls = std::clamp(log_std[i], kLogStdMin, kLogStdMax);
    out[i] = mean[i] + std::exp(ls) * rng.normal();
  }
  return out;
}

Tape::Var diag_gaussian_log_prob(Tape& tape, Tape::Var mean,
                                 Tape::Var log_std, const Tensor& actions) {
  if (!tape.value(mean).same_shape(actions) ||
      !tape.value(log_std).same_shape(actions)) {
    throw std::invalid_argument("diag_gaussian_log_prob: shape mismatch");
  }
  const Tape::Var a = tape.constant(actions);
  const Tape::Var ls = tape.clip(log_std, static_cast<float>(kLogStdMin),
                                 static_cast<float>(kLogStdMax));
  const Tape::Var sigma = tape.exp(ls);
  const Tape::Var z = tape.div(tape.sub(a, mean), sigma);
  // per-element: -0.5 z^2 - log_std - 0.5 log(2 pi)
  Tape::Var elem = tape.scale(tape.square(z), -0.5F);
  elem = tape.sub(elem, ls);
  elem = tape.add_scalar(elem, static_cast<float>(-kLogSqrt2Pi));
  return tape.sum_cols(elem);
}

Tape::Var diag_gaussian_entropy(Tape& tape, Tape::Var log_std) {
  // per-element entropy: log sigma + 0.5 log(2 pi e)
  const float c = static_cast<float>(kLogSqrt2Pi + 0.5);
  const Tape::Var per_elem = tape.add_scalar(log_std, c);
  // Sum over action dims, mean over batch rows.
  return tape.mean_all(tape.sum_cols(per_elem));
}

}  // namespace gddr::nn
