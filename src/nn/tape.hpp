// Reverse-mode automatic differentiation on a tape.
//
// The paper's policies are trained with TensorFlow; this tape is the
// equivalent substrate.  A Tape records each primitive operation applied
// to Vars (handles to tape nodes); backward() replays the tape in reverse,
// accumulating gradients.  Parameter leaves accumulate their gradient into
// the owning Parameter so optimisers can step them.
//
// The op set is exactly what the MLP policy, the Battaglia graph-network
// block (gather / segment-sum / concat / broadcast) and the PPO loss
// (elementwise arithmetic, clip, min, reductions) require.
//
// Shapes are validated eagerly; a mismatch throws std::invalid_argument
// with both shapes in the message.
#pragma once

#include <functional>
#include <vector>

#include "nn/tensor.hpp"
#include "util/contract.hpp"

namespace gddr::nn {

class Tape {
 public:
  struct Var {
    int id = -1;
    bool valid() const { return id >= 0; }
  };

  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // --- leaves ---
  Var constant(Tensor value);
  // Gradient flows into `p.grad` on backward(); `p` must outlive the tape.
  Var leaf(Parameter& p);

  // --- binary elementwise (same shape) ---
  Var add(Var a, Var b);
  Var sub(Var a, Var b);
  Var mul(Var a, Var b);
  Var div(Var a, Var b);
  Var minimum(Var a, Var b);
  Var maximum(Var a, Var b);

  // --- linear algebra / shaping ---
  Var matmul(Var a, Var b);
  // Adds a 1xC bias row to every row of an NxC matrix.
  Var add_bias(Var m, Var bias);
  // 1xC -> NxC by repetition (backward sums over rows).
  Var broadcast_rows(Var rowvec, int n);
  // Nx1 -> NxC by repetition (backward sums over cols).
  Var broadcast_cols(Var colvec, int n);
  // Same element count, new shape; data order preserved (row-major).
  Var reshape(Var x, int rows, int cols);
  Var concat_cols(Var a, Var b);
  Var slice_cols(Var m, int start, int len);
  // out[i] = m[indices[i]] (rows); backward scatter-adds.
  Var gather_rows(Var m, std::vector<int> indices);
  // out[s] = sum of rows i with segments[i] == s; the unsorted_segment_sum
  // pooling of the paper's GN blocks.
  Var segment_sum(Var m, std::vector<int> segments, int num_segments);

  // --- unary ---
  Var relu(Var x);
  Var tanh(Var x);
  Var sigmoid(Var x);
  Var exp(Var x);
  Var log(Var x);
  Var square(Var x);
  Var neg(Var x);
  Var scale(Var x, float k);
  Var add_scalar(Var x, float k);
  // Clamp to [lo, hi]; gradient passes only strictly inside the range.
  Var clip(Var x, float lo, float hi);

  // --- reductions ---
  Var sum_all(Var x);   // -> 1x1
  Var mean_all(Var x);  // -> 1x1
  Var sum_rows(Var x);  // NxC -> 1xC
  Var sum_cols(Var x);  // NxC -> Nx1

  // --- execution ---
  const Tensor& value(Var v) const;
  // Seeds d(loss)/d(loss) = 1 (loss must be 1x1) and propagates backward
  // through the whole tape, accumulating into Parameter::grad for leaves.
  void backward(Var loss);
  // Gradient of the last backward() with respect to node v.
  const Tensor& grad(Var v) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  // Gradient buffers allocated over this tape's lifetime.  Grads are
  // allocated lazily on first write, so a forward-only tape (e.g. every
  // rollout step) reports 0 here no matter how many nodes it records.
  std::size_t grad_allocations() const { return grad_allocs_; }

 private:
  struct Node {
    Tensor value;
    // Lazily allocated: empty (0x0) until backward propagation first
    // writes into it, which is exact — an untouched grad is zero.
    Tensor grad;
    Parameter* parameter = nullptr;  // non-null for leaf()
    // Accumulates input gradients given this node's grad; empty for leaves
    // and constants.
    std::function<void(Tape&, int self)> backward_fn;
  };

  Node& node(Var v) { return nodes_[static_cast<size_t>(v.id)]; }
  const Node& node(Var v) const { return nodes_[static_cast<size_t>(v.id)]; }
  // Every gradient write goes through here, so allocation can be deferred
  // to the first consumer that actually propagates into node `id`.
  Tensor& grad_of(int id) {
    // Node-id monotonicity: while node `active_backward_node_` propagates,
    // it may only touch gradients of itself and earlier nodes — the tape
    // is recorded in topological order, and a forward reference would mean
    // reading a gradient that has not been fully accumulated yet.
    GDDR_INVARIANT(active_backward_node_ < 0 || id <= active_backward_node_,
                   "nn/tape/node-order", "id", id, "active",
                   active_backward_node_);
    Node& n = nodes_[static_cast<size_t>(id)];
    if (!n.grad.same_shape(n.value)) {
      n.grad = Tensor::zeros_like(n.value);
      ++grad_allocs_;
    }
    return n.grad;
  }
  const Tensor& value_of(int id) const {
    return nodes_[static_cast<size_t>(id)].value;
  }

  Var push(Tensor value, std::function<void(Tape&, int)> backward_fn);
  void check_var(Var v, const char* op) const;
  void check_same_shape(Var a, Var b, const char* op) const;

  std::vector<Node> nodes_;
  std::size_t grad_allocs_ = 0;
  // Node whose backward_fn is currently running (-1 outside backward);
  // read by the monotonicity contract in grad_of.
  int active_backward_node_ = -1;
};

}  // namespace gddr::nn
