// Reverse-mode automatic differentiation on a tape.
//
// The paper's policies are trained with TensorFlow; this tape is the
// equivalent substrate.  A Tape records each primitive operation applied
// to Vars (handles to tape nodes); backward() replays the tape in reverse,
// accumulating gradients.  Parameter leaves accumulate their gradient into
// the owning Parameter so optimisers can step them.
//
// The op set is exactly what the MLP policy, the Battaglia graph-network
// block (gather / segment-sum / concat / broadcast) and the PPO loss
// (elementwise arithmetic, clip, min, reductions) require.  The dense
// kernels behind matmul / linear / segment_sum live in nn/kernels.hpp;
// they are bit-compatible with the naive reference loops and optionally
// shard large matmuls across a util::ThreadPool (see set_thread_pool).
//
// Memory model: every node value and gradient buffer is acquired from the
// tape's TensorArena and returned to it by reset() (or, for gradients, at
// the start of the next backward()).  A long-lived tape that is reset()
// between iterations therefore performs no steady-state heap allocation —
// the arena's miss/reuse counters (obs gauges nn/arena_bytes and
// nn/arena_reuse) prove it.
//
// Shapes are validated eagerly; a mismatch throws std::invalid_argument
// with both shapes in the message.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "nn/kernels.hpp"
#include "nn/tensor.hpp"
#include "util/contract.hpp"

namespace gddr::util {
class ThreadPool;
}  // namespace gddr::util

namespace gddr::nn {

class Tape {
 public:
  struct Var {
    int id = -1;
    bool valid() const { return id >= 0; }
  };

  Tape() = default;
  Tape(const Tape&) = delete;
  Tape& operator=(const Tape&) = delete;

  // Large matmuls shard output rows across `pool` (null/inline = serial).
  // The split is deterministic: results are bit-identical for any worker
  // count.  The pool must not be one whose workers run this tape's
  // forward/backward (a worker waiting on its own queue would deadlock).
  void set_thread_pool(util::ThreadPool* pool) { pool_ = pool; }
  util::ThreadPool* thread_pool() const { return pool_; }

  // Drops all nodes and recycles every value/grad buffer into the arena.
  // Vars from before the reset are invalidated.
  void reset();

  // --- leaves ---
  Var constant(const Tensor& value);  // copies via the arena
  Var constant(Tensor&& value);       // adopts the buffer
  // Zero-filled rows x cols constant straight from the arena.
  Var zeros(int rows, int cols);
  // Gradient flows into `p.grad` on backward(); `p` must outlive the tape.
  Var leaf(Parameter& p);

  // --- binary elementwise (same shape) ---
  Var add(Var a, Var b);
  Var sub(Var a, Var b);
  Var mul(Var a, Var b);
  Var div(Var a, Var b);
  Var minimum(Var a, Var b);
  Var maximum(Var a, Var b);

  // --- linear algebra / shaping ---
  Var matmul(Var a, Var b);
  // Fused act(x * w + bias): one kernel pass in each direction, no
  // transpose materialisation in backward.  x is NxI, w is IxO, bias 1xO.
  Var linear(Var x, Var w, Var bias, Activation act);
  // Adds a 1xC bias row to every row of an NxC matrix.
  Var add_bias(Var m, Var bias);
  // 1xC -> NxC by repetition (backward sums over rows).
  Var broadcast_rows(Var rowvec, int n);
  // Nx1 -> NxC by repetition (backward sums over cols).
  Var broadcast_cols(Var colvec, int n);
  // Same element count, new shape; data order preserved (row-major).
  Var reshape(Var x, int rows, int cols);
  Var concat_cols(Var a, Var b);
  Var slice_cols(Var m, int start, int len);
  // out[i] = m[indices[i]] (rows); backward scatter-adds.
  Var gather_rows(Var m, std::vector<int> indices);
  // Shared-index variant: the index vector is retained by pointer, so
  // repeated forward passes on one topology copy nothing and the closure
  // stays within std::function's small-buffer optimisation.
  Var gather_rows(Var m, std::shared_ptr<const std::vector<int>> indices);
  // out[s] = sum of rows i with segments[i] == s; the unsorted_segment_sum
  // pooling of the paper's GN blocks.
  Var segment_sum(Var m, std::vector<int> segments, int num_segments);
  // Planned variant: the bucketed plan is built once per topology
  // (kernels::build_segment_plan) and shared across forward calls.
  Var segment_sum(Var m, std::shared_ptr<const kernels::SegmentPlan> plan);

  // --- unary ---
  Var relu(Var x);
  Var tanh(Var x);
  Var sigmoid(Var x);
  Var exp(Var x);
  Var log(Var x);
  Var square(Var x);
  Var neg(Var x);
  Var scale(Var x, float k);
  Var add_scalar(Var x, float k);
  // Clamp to [lo, hi]; gradient passes only strictly inside the range.
  Var clip(Var x, float lo, float hi);

  // --- reductions ---
  Var sum_all(Var x);   // -> 1x1
  Var mean_all(Var x);  // -> 1x1
  Var sum_rows(Var x);  // NxC -> 1xC
  Var sum_cols(Var x);  // NxC -> Nx1

  // --- execution ---
  const Tensor& value(Var v) const;
  // Seeds d(loss)/d(loss) = 1 (loss must be 1x1) and propagates backward
  // through the whole tape, accumulating into Parameter::grad for leaves.
  void backward(Var loss);
  // Gradient of the last backward() with respect to node v.
  const Tensor& grad(Var v) const;

  std::size_t num_nodes() const { return nodes_.size(); }
  // Gradient buffers allocated over this tape's lifetime.  Grads are
  // allocated lazily on first write, so a forward-only tape (e.g. every
  // rollout step) reports 0 here no matter how many nodes it records.
  std::size_t grad_allocations() const { return grad_allocs_; }

  // Arena telemetry (also exported as obs gauges at reset()).  In steady
  // state arena_bytes/arena_misses are flat and arena_reuse grows.
  std::size_t arena_bytes() const { return arena_.bytes_allocated(); }
  std::uint64_t arena_reuse() const { return arena_.reuse_count(); }
  std::uint64_t arena_misses() const { return arena_.miss_count(); }

 private:
  struct Node {
    Tensor value;
    // Lazily allocated: empty (0x0) until backward propagation first
    // writes into it, which is exact — an untouched grad is zero.
    Tensor grad;
    Parameter* parameter = nullptr;  // non-null for leaf()
    // Accumulates input gradients given this node's grad; empty for leaves
    // and constants.
    std::function<void(Tape&, int self)> backward_fn;
  };

  Node& node(Var v) { return nodes_[static_cast<size_t>(v.id)]; }
  const Node& node(Var v) const { return nodes_[static_cast<size_t>(v.id)]; }
  // Every gradient write goes through here, so allocation can be deferred
  // to the first consumer that actually propagates into node `id`.
  Tensor& grad_of(int id) {
    // Node-id monotonicity: while node `active_backward_node_` propagates,
    // it may only touch gradients of itself and earlier nodes — the tape
    // is recorded in topological order, and a forward reference would mean
    // reading a gradient that has not been fully accumulated yet.
    GDDR_INVARIANT(active_backward_node_ < 0 || id <= active_backward_node_,
                   "nn/tape/node-order", "id", id, "active",
                   active_backward_node_);
    Node& n = nodes_[static_cast<size_t>(id)];
    if (!n.grad.same_shape(n.value)) {
      n.grad = arena_.acquire(n.value.rows(), n.value.cols());
      ++grad_allocs_;
    }
    return n.grad;
  }
  const Tensor& value_of(int id) const {
    return nodes_[static_cast<size_t>(id)].value;
  }

  // Arena shorthands every op allocates through.
  Tensor alloc(int rows, int cols) { return arena_.acquire(rows, cols); }
  Tensor alloc_copy(const Tensor& src) { return arena_.acquire_copy(src); }

  Var push(Tensor value, std::function<void(Tape&, int)> backward_fn);
  void check_var(Var v, const char* op) const;
  void check_same_shape(Var a, Var b, const char* op) const;

  std::vector<Node> nodes_;
  // Keeps shared index vectors / segment plans alive for the closures that
  // capture them by raw pointer (raw captures keep the closures inside
  // std::function's small-buffer optimisation — no per-node allocation).
  std::vector<std::shared_ptr<const void>> retained_;
  kernels::TensorArena arena_;
  util::ThreadPool* pool_ = nullptr;
  std::size_t grad_allocs_ = 0;
  // Node whose backward_fn is currently running (-1 outside backward);
  // read by the monotonicity contract in grad_of.
  int active_backward_node_ = -1;
};

}  // namespace gddr::nn
