// gddr_cli — command-line front end to the GDDR library.
//
//   gddr_cli topos                        list the embedded catalogue
//   gddr_cli show <topology>              nodes, links, capacities
//   gddr_cli export <topology> <file>     write topology in gddr format
//   gddr_cli optimal <topology> [seed]    optimal congestion for a random DM
//   gddr_cli route <topology> [gamma]     softmin routing vs baselines
//   gddr_cli tables <topology> [gamma]    per-switch flow tables
//   gddr_cli eval <topology> [seed]       baseline schemes vs the LP optimum
//                                         over generated test sequences
//
// All commands accept --workers N (default: hardware concurrency) to size
// the thread pool used by parallel evaluation.
//
// Topologies may name a catalogue entry or be a path to a
// gddr-topology file (see src/topo/io.hpp).
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "mcf/mean_util.hpp"
#include "mcf/optimal.hpp"
#include "routing/baselines.hpp"
#include "routing/forwarding.hpp"
#include "routing/softmin.hpp"
#include "topo/io.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace gddr;

graph::DiGraph resolve_topology(const std::string& spec) {
  for (const auto& name : topo::catalogue_names()) {
    if (name == spec) return topo::by_name(spec);
  }
  return topo::load_topology_file(spec);
}

traffic::DemandMatrix random_demand(const graph::DiGraph& g,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  traffic::BimodalParams params;
  params.pair_density = 0.3;
  return traffic::bimodal_matrix(g.num_nodes(), params, rng);
}

int cmd_topos() {
  util::Table table({"name", "|V|", "|E| (directed)", "total capacity"});
  for (const auto& name : topo::catalogue_names()) {
    const auto g = topo::by_name(name);
    table.add_row({name, std::to_string(g.num_nodes()),
                   std::to_string(g.num_edges()),
                   util::fmt(g.total_capacity(), 0)});
  }
  table.print();
  return 0;
}

int cmd_show(const std::string& spec) {
  const auto g = resolve_topology(spec);
  std::printf("%s: %d nodes, %d directed edges\n", g.name().c_str(),
              g.num_nodes(), g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    std::printf("  edge %2d: %2d -> %2d  capacity %.0f\n", e, ed.src, ed.dst,
                ed.capacity);
  }
  return 0;
}

int cmd_export(const std::string& spec, const std::string& path) {
  const auto g = resolve_topology(spec);
  topo::save_topology_file(path, g);
  std::printf("wrote %s to %s\n", g.name().c_str(), path.c_str());
  return 0;
}

int cmd_optimal(const std::string& spec, std::uint64_t seed) {
  const auto g = resolve_topology(spec);
  const auto dm = random_demand(g, seed);
  std::printf("%s with a bimodal demand matrix (seed %llu, total %.0f)\n",
              g.name().c_str(), static_cast<unsigned long long>(seed),
              dm.total());
  const auto opt = mcf::solve_optimal(g, dm);
  if (!opt.feasible) {
    std::printf("LP failed\n");
    return 1;
  }
  std::printf("optimal max link utilisation U*: %.4f\n", opt.u_max);
  std::printf("optimal mean link utilisation:   %.4f\n",
              mcf::min_mean_utilisation(g, dm));
  const auto util = mcf::edge_utilisation(g, opt);
  std::vector<graph::EdgeId> order(static_cast<size_t>(g.num_edges()));
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    order[static_cast<size_t>(e)] = e;
  }
  std::sort(order.begin(), order.end(), [&](graph::EdgeId a, graph::EdgeId b) {
    return util[static_cast<size_t>(a)] > util[static_cast<size_t>(b)];
  });
  std::printf("most utilised links at the optimum:\n");
  for (int rank = 0; rank < 5 && rank < g.num_edges(); ++rank) {
    const graph::EdgeId e = order[static_cast<size_t>(rank)];
    const auto& ed = g.edge(e);
    std::printf("  %2d -> %2d: %.4f\n", ed.src, ed.dst,
                util[static_cast<size_t>(e)]);
  }
  return 0;
}

int cmd_route(const std::string& spec, double gamma) {
  const auto g = resolve_topology(spec);
  const auto dm = random_demand(g, 1);
  const double u_opt = mcf::solve_optimal(g, dm).u_max;

  routing::SoftminOptions options;
  options.gamma = gamma;
  const std::vector<double> weights(static_cast<size_t>(g.num_edges()), 1.0);

  util::Table table({"scheme", "U_max", "ratio to optimal"});
  auto row = [&](const std::string& label, const routing::Routing& r) {
    const auto sim = routing::simulate(g, r, dm);
    table.add_row({label, util::fmt(sim.u_max),
                   util::fmt(u_opt > 0 ? sim.u_max / u_opt : 0.0)});
  };
  row("softmin (gamma " + util::fmt(gamma, 1) + ")",
      routing::softmin_routing(g, weights, options));
  row("shortest path", routing::shortest_path_routing(g));
  row("ECMP", routing::ecmp_routing(g, graph::unit_weights(g)));
  table.add_row({"optimal (LP)", util::fmt(u_opt), "1.0000"});
  table.print();
  return 0;
}

int cmd_tables(const std::string& spec, double gamma) {
  const auto g = resolve_topology(spec);
  routing::SoftminOptions options;
  options.gamma = gamma;
  const std::vector<double> weights(static_cast<size_t>(g.num_edges()), 1.0);
  const auto r = routing::softmin_routing(g, weights, options);
  const auto tables = routing::to_flow_tables(g, r);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    std::fputs(routing::format_flow_table(g, tables, v).c_str(), stdout);
  }
  return 0;
}

int cmd_eval(const std::string& spec, std::uint64_t seed,
             util::ThreadPool& pool) {
  using namespace gddr::core;
  util::Rng rng(seed);
  ScenarioParams params = experiment_scenario_params();
  params.train_sequences = 1;
  params.test_sequences = 2;
  const Scenario scenario = make_scenario(resolve_topology(spec), params, rng);
  const int memory = 5;
  mcf::OptimalCache cache;

  std::printf("%s: %d nodes, %d directed edges; %d test sequences, "
              "%d worker(s)\n",
              scenario.graph.name().c_str(), scenario.graph.num_nodes(),
              scenario.graph.num_edges(), params.test_sequences,
              pool.size() > 0 ? pool.size() : 1);

  util::Table table({"scheme", "mean ratio", "stddev", "max", "DMs"});
  auto row = [&](const std::string& label, const EvalResult& r) {
    table.add_row({label, util::fmt(r.mean_ratio), util::fmt(r.stddev),
                   util::fmt(r.max_ratio), std::to_string(r.steps)});
  };
  row("shortest path",
      evaluate_shortest_path({scenario}, memory, cache, &pool));
  row("ECMP", evaluate_fixed(
                  {scenario}, memory, cache,
                  [](const graph::DiGraph& gr) {
                    return routing::ecmp_routing(gr, graph::unit_weights(gr));
                  },
                  &pool));
  row("softmin (neutral)",
      evaluate_fixed(
          {scenario}, memory, cache,
          [](const graph::DiGraph& gr) {
            const std::vector<double> w(
                static_cast<size_t>(gr.num_edges()), 1.0);
            return routing::softmin_routing(gr, w);
          },
          &pool));
  table.print();
  std::printf("LP cache: %zu entries, %zu hits, %zu misses\n", cache.size(),
              cache.hits(), cache.misses());
  return 0;
}

int usage() {
  std::fprintf(stderr,
               "usage: gddr_cli [--workers N] <command> [...]\n"
               "  topos\n"
               "  show <topology>\n"
               "  export <topology> <file>\n"
               "  optimal <topology> [seed]\n"
               "  route <topology> [gamma]\n"
               "  tables <topology> [gamma]\n"
               "  eval <topology> [seed]\n"
               "<topology> is a catalogue name (see 'topos') or a "
               "gddr-topology file path.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 0;
  try {
    workers = util::consume_workers_flag(argc, argv);
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 2;
  }
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    util::ThreadPool pool(workers);
    if (command == "topos") return cmd_topos();
    if (command == "show" && argc >= 3) return cmd_show(argv[2]);
    if (command == "export" && argc >= 4) return cmd_export(argv[2], argv[3]);
    if (command == "optimal" && argc >= 3) {
      return cmd_optimal(argv[2],
                         argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 1);
    }
    if (command == "route" && argc >= 3) {
      return cmd_route(argv[2], argc >= 4 ? std::atof(argv[3]) : 2.0);
    }
    if (command == "tables" && argc >= 3) {
      return cmd_tables(argv[2], argc >= 4 ? std::atof(argv[3]) : 2.0);
    }
    if (command == "eval" && argc >= 3) {
      return cmd_eval(argv[2],
                      argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 1,
                      pool);
    }
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  }
  return usage();
}
