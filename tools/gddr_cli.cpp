// gddr_cli — command-line front end to the GDDR library.
//
//   gddr_cli topos                        list the embedded catalogue
//   gddr_cli show <topology>              nodes, links, capacities
//   gddr_cli export <topology> <file>     write topology in gddr format
//   gddr_cli optimal <topology> [seed]    optimal congestion for a random DM
//   gddr_cli route <topology> [gamma]     softmin routing vs baselines
//   gddr_cli tables <topology> [gamma]    per-switch flow tables
//   gddr_cli eval <topology> [seed]       baseline schemes vs the LP optimum
//                                         over generated test sequences
//   gddr_cli train <topology> [steps]     PPO-train a GNN policy with
//                                         periodic atomic checkpoints
//       [--checkpoint <path>]             checkpoint file (default
//                                         gddr_train.ckpt)
//       [--resume <path>]                 resume a killed run bit-identically
//       [--every N]                       checkpoint every N iterations
//       [--seed S]
//   gddr_cli serve-sim <topology> [requests]
//                                         drive the resilient serving
//                                         pipeline (serve::RobustRouter)
//                                         over generated demand, optionally
//                                         degrading the topology mid-run
//       [--seed S] [--deadline-us N] [--gamma G]
//       [--policy <params file>]          serve trained weights instead of
//                                         a randomly initialised policy
//       [--fail-at N]                     degrade the topology from request
//                                         N onward (1-based)
//       [--heal-at M]                     restore it from request M onward
//       [--fail-links K]                  degrade by removing K random links
//       [--isolate V]                     degrade the topology by removing
//                                         every link leaving node V (makes
//                                         (V,*) demand unroutable)
//   gddr_cli publish <ckpt> --registry <dir>
//                                         validate a training checkpoint and
//                                         publish its parameters as the next
//                                         version in a lifecycle registry
//       [--retention K]                   newest versions kept on disk
//
//   serve-sim additionally accepts a registry mode that exercises the
//   full policy lifecycle (lifecycle::Promoter) against live simulated
//   traffic: the newest-but-one version serves as the incumbent and the
//   newest is staged as a candidate, shadow-evaluated, canaried and
//   promoted (or rolled back) while requests stream:
//       [--registry <dir>]                enables registry mode
//       [--shadow-frac F]                 fraction of live requests mirrored
//                                         through the candidate (default 0.25)
//       [--canary-frac F]                 fraction of real batches served by
//                                         the candidate (default 0.25)
//       [--promote-after N]               shadow pairs required before the
//                                         promotion gates are judged
//
//   gddr_cli serve-bench <topology> [requests]
//                                         drive the concurrent serving
//                                         engine (serve::Engine) with a
//                                         paced open-loop request stream
//                                         and report throughput, shed
//                                         counts and latency quantiles
//       [--qps Q]                         offered request rate (0 = unpaced)
//       [--batch B]                       micro-batch limit per GNN forward
//       [--shed-policy P]                 expired-first | reject-newest
//       [--queue-cap C]                   admission queue capacity
//       [--queue-deadline-us D]           per-request queueing deadline
//                                         (0 = none)
//       [--seed S] [--policy file]
//       [--json path]                     write a gddr.serve_bench.v1
//                                         summary for CI smoke checks
//
// All commands accept --workers N (default: hardware concurrency) to size
// the thread pool used by parallel evaluation, plus --metrics <path>
// [--metrics-every N] to stream per-iteration "gddr.metrics.v1" JSONL
// telemetry and print an end-of-run summary table (DESIGN.md §7).  The
// GDDR_METRICS environment variable does the same without flags.
// serve-bench reuses the same --workers value as the engine's worker
// thread count, so `gddr_cli serve-bench Abilene --workers 4` serves with
// four engine workers.
//
// Exit codes: 0 success, 1 runtime error, 2 usage, 3 solver failure
// (util::SolverError), 4 I/O failure (util::IoError); serve-sim adds
// 5 (some request exhausted its deadline budget) and 6 (some demand was
// dropped as unroutable on the degraded topology), with 5 taking
// precedence over 6.
//
// Fault injection: set GDDR_FAULTS (see util/fault.hpp for the spec
// grammar) to rehearse failure paths, e.g.
// GDDR_FAULTS=lp_solve@1+ forces every LP onto the FPTAS fallback.
//
// Topologies may name a catalogue entry or be a path to a
// gddr-topology file (see src/topo/io.hpp).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "graph/algorithms.hpp"
#include "lifecycle/promoter.hpp"
#include "nn/serialize.hpp"
#include "serve/engine.hpp"
#include "serve/router.hpp"
#include "mcf/mean_util.hpp"
#include "mcf/optimal.hpp"
#include "obs/metrics.hpp"
#include "obs/sink.hpp"
#include "routing/baselines.hpp"
#include "routing/forwarding.hpp"
#include "routing/softmin.hpp"
#include "topo/io.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"
#include "util/error.hpp"
#include "util/fault.hpp"
#include "util/fs.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace gddr;

int usage();

graph::DiGraph resolve_topology(const std::string& spec) {
  for (const auto& name : topo::catalogue_names()) {
    if (name == spec) return topo::by_name(spec);
  }
  return topo::load_topology_file(spec);
}

traffic::DemandMatrix random_demand(const graph::DiGraph& g,
                                    std::uint64_t seed) {
  util::Rng rng(seed);
  traffic::BimodalParams params;
  params.pair_density = 0.3;
  return traffic::bimodal_matrix(g.num_nodes(), params, rng);
}

int cmd_topos() {
  util::Table table({"name", "|V|", "|E| (directed)", "total capacity"});
  for (const auto& name : topo::catalogue_names()) {
    const auto g = topo::by_name(name);
    table.add_row({name, std::to_string(g.num_nodes()),
                   std::to_string(g.num_edges()),
                   util::fmt(g.total_capacity(), 0)});
  }
  table.print();
  return 0;
}

int cmd_show(const std::string& spec) {
  const auto g = resolve_topology(spec);
  std::printf("%s: %d nodes, %d directed edges\n", g.name().c_str(),
              g.num_nodes(), g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    std::printf("  edge %2d: %2d -> %2d  capacity %.0f\n", e, ed.src, ed.dst,
                ed.capacity);
  }
  return 0;
}

int cmd_export(const std::string& spec, const std::string& path) {
  const auto g = resolve_topology(spec);
  topo::save_topology_file(path, g);
  std::printf("wrote %s to %s\n", g.name().c_str(), path.c_str());
  return 0;
}

int cmd_optimal(const std::string& spec, std::uint64_t seed) {
  const auto g = resolve_topology(spec);
  const auto dm = random_demand(g, seed);
  std::printf("%s with a bimodal demand matrix (seed %llu, total %.0f)\n",
              g.name().c_str(), static_cast<unsigned long long>(seed),
              dm.total());
  const auto opt = mcf::solve_optimal(g, dm);
  if (opt.provenance == mcf::SolveProvenance::kFailed) {
    throw util::SolverError("optimal congestion LP failed (unroutable)");
  }
  std::printf("optimal max link utilisation U*: %.4f (%s)\n", opt.u_max,
              mcf::to_string(opt.provenance));
  if (opt.provenance == mcf::SolveProvenance::kApproximate) {
    // FPTAS fallback: no flow decomposition, so skip the per-link report.
    return 0;
  }
  std::printf("optimal mean link utilisation:   %.4f\n",
              mcf::min_mean_utilisation(g, dm));
  const auto util = mcf::edge_utilisation(g, opt);
  std::vector<graph::EdgeId> order(static_cast<size_t>(g.num_edges()));
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    order[static_cast<size_t>(e)] = e;
  }
  std::sort(order.begin(), order.end(), [&](graph::EdgeId a, graph::EdgeId b) {
    return util[static_cast<size_t>(a)] > util[static_cast<size_t>(b)];
  });
  std::printf("most utilised links at the optimum:\n");
  for (int rank = 0; rank < 5 && rank < g.num_edges(); ++rank) {
    const graph::EdgeId e = order[static_cast<size_t>(rank)];
    const auto& ed = g.edge(e);
    std::printf("  %2d -> %2d: %.4f\n", ed.src, ed.dst,
                util[static_cast<size_t>(e)]);
  }
  return 0;
}

int cmd_route(const std::string& spec, double gamma) {
  const auto g = resolve_topology(spec);
  const auto dm = random_demand(g, 1);
  const double u_opt = mcf::solve_optimal(g, dm).u_max;

  routing::SoftminOptions options;
  options.gamma = gamma;
  const std::vector<double> weights(static_cast<size_t>(g.num_edges()), 1.0);

  util::Table table({"scheme", "U_max", "ratio to optimal"});
  auto row = [&](const std::string& label, const routing::Routing& r) {
    const auto sim = routing::simulate(g, r, dm);
    table.add_row({label, util::fmt(sim.u_max),
                   util::fmt(u_opt > 0 ? sim.u_max / u_opt : 0.0)});
  };
  row("softmin (gamma " + util::fmt(gamma, 1) + ")",
      routing::softmin_routing(g, weights, options));
  row("shortest path", routing::shortest_path_routing(g));
  row("ECMP", routing::ecmp_routing(g, graph::unit_weights(g)));
  table.add_row({"optimal (LP)", util::fmt(u_opt), "1.0000"});
  table.print();
  return 0;
}

int cmd_tables(const std::string& spec, double gamma) {
  const auto g = resolve_topology(spec);
  routing::SoftminOptions options;
  options.gamma = gamma;
  const std::vector<double> weights(static_cast<size_t>(g.num_edges()), 1.0);
  const auto r = routing::softmin_routing(g, weights, options);
  const auto tables = routing::to_flow_tables(g, r);
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
    std::fputs(routing::format_flow_table(g, tables, v).c_str(), stdout);
  }
  return 0;
}

int cmd_eval(const std::string& spec, std::uint64_t seed,
             util::ThreadPool& pool) {
  using namespace gddr::core;
  util::Rng rng(seed);
  ScenarioParams params = experiment_scenario_params();
  params.train_sequences = 1;
  params.test_sequences = 2;
  const Scenario scenario = make_scenario(resolve_topology(spec), params, rng);
  const int memory = 5;
  mcf::OptimalCache cache;

  std::printf("%s: %d nodes, %d directed edges; %d test sequences, "
              "%d worker(s)\n",
              scenario.graph.name().c_str(), scenario.graph.num_nodes(),
              scenario.graph.num_edges(), params.test_sequences,
              pool.size() > 0 ? pool.size() : 1);

  util::Table table({"scheme", "mean ratio", "stddev", "max", "DMs"});
  auto row = [&](const std::string& label, const EvalResult& r) {
    table.add_row({label, util::fmt(r.mean_ratio), util::fmt(r.stddev),
                   util::fmt(r.max_ratio), std::to_string(r.steps)});
  };
  row("shortest path",
      evaluate_shortest_path({scenario}, memory, cache, &pool));
  row("ECMP", evaluate_fixed(
                  {scenario}, memory, cache,
                  [](const graph::DiGraph& gr) {
                    return routing::ecmp_routing(gr, graph::unit_weights(gr));
                  },
                  &pool));
  row("softmin (neutral)",
      evaluate_fixed(
          {scenario}, memory, cache,
          [](const graph::DiGraph& gr) {
            const std::vector<double> w(
                static_cast<size_t>(gr.num_edges()), 1.0);
            return routing::softmin_routing(gr, w);
          },
          &pool));
  table.print();
  std::printf("LP cache: %zu entries, %zu hits, %zu misses "
              "(%zu exact, %zu approximate solves)\n",
              cache.size(), cache.hits(), cache.misses(),
              cache.exact_solves(), cache.approx_solves());
  return 0;
}

struct TrainArgs {
  std::string topology;
  long steps = 1024;
  std::string checkpoint = "gddr_train.ckpt";
  std::string resume;
  long every = 1;
  std::uint64_t seed = 1;
};

int cmd_train(const TrainArgs& args, const obs::MetricsOptions& metrics) {
  using namespace gddr::core;
  util::Rng rng(args.seed);
  ScenarioParams params = experiment_scenario_params();
  params.train_sequences = 2;
  params.test_sequences = 1;

  ExperimentConfig cfg;
  cfg.scenarios = {
      make_scenario(resolve_topology(args.topology), params, rng)};
  cfg.ppo = routing_ppo_config();
  cfg.policy = experiment_gnn_config(cfg.env.memory);
  cfg.num_envs = 2;
  cfg.policy_seed = args.seed;
  cfg.train_seed = args.seed + 1;
  cfg.checkpoint_path = args.checkpoint;
  cfg.checkpoint_every_iterations = args.every;
  cfg.metrics_path = metrics.path;
  cfg.metrics_every_iterations = metrics.every;

  Experiment experiment(std::move(cfg));
  if (!args.resume.empty()) {
    experiment.resume_from(args.resume);
    std::printf("resumed from %s (iteration %ld, %ld env steps)\n",
                args.resume.c_str(), experiment.trainer().iterations(),
                experiment.trainer().total_env_steps());
  }

  // `steps` is the total budget: a resumed run trains only the remainder,
  // so kill + resume lands on the same final state as an unbroken run.
  const long remaining = args.steps - experiment.trainer().total_env_steps();
  if (remaining <= 0) {
    std::printf("nothing to do: checkpoint already has %ld of %ld steps\n",
                experiment.trainer().total_env_steps(), args.steps);
    return 0;
  }
  const auto history = experiment.train(remaining);
  util::Table table({"iter", "steps", "mean reward", "lr", "rollbacks"});
  long iter = experiment.trainer().iterations() -
              static_cast<long>(history.size());
  for (const auto& stats : history) {
    ++iter;
    table.add_row({std::to_string(iter), std::to_string(stats.steps),
                   util::fmt(stats.mean_episode_reward),
                   util::fmt(stats.learning_rate, 6),
                   std::to_string(stats.health_rollbacks)});
  }
  table.print();
  if (!args.checkpoint.empty()) {
    std::printf("checkpoint: %s (every %ld iteration(s))\n",
                args.checkpoint.c_str(), args.every);
  }
  if (obs::enabled()) {
    const std::string summary =
        obs::render_summary(obs::Registry::instance().snapshot());
    if (!summary.empty()) std::printf("%s\n", summary.c_str());
    if (!metrics.path.empty()) {
      std::printf("metrics: %s (every %d iteration(s))\n",
                  metrics.path.c_str(), metrics.every);
    }
  }
  return 0;
}

struct ServeSimArgs {
  std::string topology;
  long requests = 60;
  std::uint64_t seed = 1;
  long deadline_us = 1'000'000;
  double gamma = 2.0;
  std::string policy_path;
  long fail_at = 0;   // 0 = never degrade
  long heal_at = 0;   // 0 = never heal
  int fail_links = 0;
  int isolate = -1;   // node whose out-links are removed (-1 = none)
  // Registry mode (lifecycle::Promoter over live simulated traffic).
  std::string registry_dir;
  double shadow_frac = 0.25;
  double canary_frac = 0.25;
  long promote_after = 20;
};

// Registry mode: the newest-but-one registry version serves as the
// incumbent, the newest is staged as a candidate and taken through
// shadow → canary → live (or rolled back) by a lifecycle::Promoter
// wired into the serving engine's decision observer, while the same
// simulated request stream as plain serve-sim flows through an inline
// serve::Engine.  With a single version the registry incumbent just
// serves (nothing to stage).  Exit codes match plain serve-sim.
int cmd_serve_sim_registry(const ServeSimArgs& args,
                           const obs::MetricsOptions& metrics) {
  const auto g = resolve_topology(args.topology);

  lifecycle::RegistryConfig reg_cfg;
  reg_cfg.policy = core::experiment_gnn_config(5);
  lifecycle::ModelRegistry registry(args.registry_dir, reg_cfg);
  const std::vector<lifecycle::RegistryEntry> entries = registry.entries();
  if (entries.empty()) {
    throw util::IoError("serve-sim: registry '" + args.registry_dir +
                        "' is empty — run 'gddr_cli publish' first");
  }
  const std::uint64_t latest = registry.latest();
  const std::uint64_t incumbent_version =
      entries.size() >= 2 ? entries[entries.size() - 2].version : latest;

  serve::EngineConfig ecfg;
  ecfg.workers = 0;  // inline: deterministic, single-threaded driver
  ecfg.max_batch = 1;  // per-request batches: canary fraction ≈ request share
  ecfg.router.deadline = std::chrono::microseconds(args.deadline_us);
  ecfg.router.softmin.gamma = args.gamma;
  serve::Engine engine(nullptr, ecfg);
  engine.set_policy(registry.load(incumbent_version), incumbent_version);

  lifecycle::PromoterConfig pcfg;
  pcfg.shadow_fraction = args.shadow_frac;
  pcfg.canary_fraction = args.canary_frac;
  pcfg.promote_after = args.promote_after;
  pcfg.canary_decisions = std::max(1L, args.promote_after / 2);
  pcfg.router = ecfg.router;
  lifecycle::Promoter promoter(registry, engine, pcfg);
  engine.set_decision_observer(
      [&promoter](const serve::RouteRequest& request,
                  const serve::DecisionRecord& record) {
        promoter.observe(request, record);
      });
  if (latest != incumbent_version) promoter.stage(latest);

  traffic::BimodalParams dparams;
  dparams.pair_density = 0.3;
  util::Rng rng(args.seed);
  traffic::DemandSequence history;
  std::vector<std::future<serve::ServeOutcome>> futures;
  futures.reserve(static_cast<std::size_t>(args.requests));
  for (long i = 1; i <= args.requests; ++i) {
    serve::RouteRequest request;
    request.graph = &g;
    request.demand = traffic::bimodal_matrix(g.num_nodes(), dparams, rng);
    request.history = history;
    history.push_back(request.demand);
    if (static_cast<int>(history.size()) > ecfg.router.memory) {
      history.erase(history.begin());
    }
    futures.push_back(engine.submit(std::move(request)));
    engine.poll();
  }
  engine.shutdown();
  long shed = 0;
  for (auto& future : futures) {
    if (future.get().shed) ++shed;
  }

  const lifecycle::Promoter::Summary summary = promoter.summary();
  std::printf("%s: %ld requests via registry %s "
              "(incumbent v%llu, latest v%llu)\n",
              g.name().c_str(), args.requests, args.registry_dir.c_str(),
              static_cast<unsigned long long>(incumbent_version),
              static_cast<unsigned long long>(latest));
  util::Table lifecycle_table({"lifecycle", "value"});
  lifecycle_table.add_row({"state", lifecycle::to_string(summary.state)});
  lifecycle_table.add_row({"live version",
                           std::to_string(engine.live_version())});
  lifecycle_table.add_row({"hot swaps", std::to_string(engine.swaps())});
  lifecycle_table.add_row({"shadow mirrored",
                           std::to_string(summary.shadow.mirrored)});
  lifecycle_table.add_row({"shadow win rate",
                           util::fmt(summary.shadow.win_rate(), 3)});
  lifecycle_table.add_row(
      {"shadow mean dU_max", util::fmt(summary.shadow.delta.mean(), 6)});
  lifecycle_table.add_row({"shadow p99 latency (us)",
                           util::fmt(summary.shadow.p99_latency_us, 1)});
  lifecycle_table.add_row({"canary served",
                           std::to_string(summary.canary_served)});
  lifecycle_table.add_row({"promotions", std::to_string(summary.promotions)});
  lifecycle_table.add_row({"rollbacks", std::to_string(summary.rollbacks)});
  if (!summary.rollback_reason.empty()) {
    lifecycle_table.add_row({"rollback reason", summary.rollback_reason});
  }
  lifecycle_table.print();

  const serve::RouterStats st = engine.router_stats();
  util::Table rungs({"rung", "decisions"});
  for (int r = 0; r < static_cast<int>(serve::Rung::kRungCount); ++r) {
    rungs.add_row({serve::rung_name(static_cast<serve::Rung>(r)),
                   std::to_string(st.rung_decisions[r])});
  }
  rungs.print();
  std::printf("shed: %ld; sanitiser: %ld degraded requests, %ld unroutable "
              "entries dropped\n",
              shed, st.sanitized_requests, st.unroutable_entries);
  // One cumulative gddr.metrics.v1 record (the CI lifecycle smoke
  // asserts the lifecycle/* counters from it).
  const std::string obs_summary = obs::finish(metrics);
  if (!obs_summary.empty()) std::printf("%s\n", obs_summary.c_str());
  if (st.deadline_exhausted > 0) return 5;
  if (st.unroutable_entries > 0) return 6;
  return 0;
}

struct PublishArgs {
  std::string checkpoint;
  std::string registry_dir;
  int retention = 8;
};

int cmd_publish(const PublishArgs& args) {
  lifecycle::RegistryConfig cfg;
  cfg.retention = args.retention;
  cfg.policy = core::experiment_gnn_config(5);
  lifecycle::ModelRegistry registry(args.registry_dir, cfg);
  const std::uint64_t version = registry.publish_file(args.checkpoint);
  std::printf("published %s as v%llu in %s (%zu version(s) on disk, "
              "retention %d)\n",
              args.checkpoint.c_str(),
              static_cast<unsigned long long>(version),
              args.registry_dir.c_str(), registry.entries().size(),
              args.retention);
  return 0;
}

// Exit code: 5 if any request exhausted its deadline, else 6 if any
// demand was dropped as unroutable, else 0.
int cmd_serve_sim(const ServeSimArgs& args,
                  const obs::MetricsOptions& metrics) {
  if (!args.registry_dir.empty()) {
    return cmd_serve_sim_registry(args, metrics);
  }
  const auto g = resolve_topology(args.topology);

  // Degraded variant served between --fail-at and --heal-at.
  graph::DiGraph degraded = g;
  util::Rng rng(args.seed);
  if (args.isolate >= 0) {
    if (args.isolate >= g.num_nodes()) {
      throw std::runtime_error("serve-sim: --isolate node out of range");
    }
    std::vector<bool> remove(static_cast<size_t>(g.num_edges()), false);
    for (const graph::EdgeId e :
         g.out_edges(static_cast<graph::NodeId>(args.isolate))) {
      remove[static_cast<size_t>(e)] = true;
    }
    degraded = g.without_edges(remove);
  }
  for (int k = 0; k < args.fail_links && degraded.num_edges() > 0; ++k) {
    degraded = degraded.without_edge(static_cast<graph::EdgeId>(
        rng.uniform_index(static_cast<size_t>(degraded.num_edges()))));
  }

  core::GnnPolicyConfig pcfg = core::experiment_gnn_config(5);
  util::Rng policy_rng(args.seed + 17);
  core::GnnPolicy policy(pcfg, policy_rng);
  if (!args.policy_path.empty()) {
    nn::load_parameters(args.policy_path, policy.parameters());
  }

  serve::RouterConfig rcfg;
  rcfg.deadline = std::chrono::microseconds(args.deadline_us);
  rcfg.softmin.gamma = args.gamma;
  serve::RobustRouter router(&policy, rcfg);

  traffic::BimodalParams dparams;
  dparams.pair_density = 0.3;
  traffic::DemandSequence history;
  double latency_sum = 0.0;
  double latency_max = 0.0;
  for (long i = 1; i <= args.requests; ++i) {
    const bool degraded_now =
        args.fail_at > 0 && i >= args.fail_at &&
        (args.heal_at == 0 || i < args.heal_at);
    const graph::DiGraph& active = degraded_now ? degraded : g;
    serve::RouteRequest request;
    request.graph = &active;
    request.demand =
        traffic::bimodal_matrix(active.num_nodes(), dparams, rng);
    request.history = history;
    const serve::RouteDecision decision = router.decide(request);
    latency_sum += decision.latency_s;
    latency_max = std::max(latency_max, decision.latency_s);
    history.push_back(request.demand);
    if (static_cast<int>(history.size()) > rcfg.memory) {
      history.erase(history.begin());
    }
  }

  const serve::RouterStats& st = router.stats();
  std::printf("%s: %ld requests (deadline %ld us, gamma %.1f, %s policy)\n",
              g.name().c_str(), args.requests, args.deadline_us, args.gamma,
              args.policy_path.empty() ? "random-init" : "trained");
  util::Table rungs({"rung", "decisions"});
  for (int r = 0; r < static_cast<int>(serve::Rung::kRungCount); ++r) {
    rungs.add_row({serve::rung_name(static_cast<serve::Rung>(r)),
                   std::to_string(st.rung_decisions[r])});
  }
  rungs.print();
  util::Table causes({"failure cause", "count"});
  for (int c = 1; c < static_cast<int>(serve::FailureCause::kCauseCount);
       ++c) {
    const long count = st.failure_causes[c];
    if (count == 0) continue;
    causes.add_row({serve::cause_name(static_cast<serve::FailureCause>(c)),
                    std::to_string(count)});
  }
  causes.print();
  const serve::CircuitBreaker::Stats& br = router.breaker().stats();
  std::printf("breaker: %s (%ld trips, %ld probes, %ld reopens, "
              "%ld recoveries)\n",
              serve::to_string(router.breaker().state()), br.trips,
              br.probes, br.reopens, br.recoveries);
  std::printf("sanitiser: %ld degraded requests, %ld unroutable entries "
              "dropped\n",
              st.sanitized_requests, st.unroutable_entries);
  std::printf("deadline exhausted: %ld; latency mean %.3f ms, max %.3f ms; "
              "topology cache: %zu entries, %ld hits, %ld misses\n",
              st.deadline_exhausted,
              args.requests > 0
                  ? latency_sum / static_cast<double>(args.requests) * 1e3
                  : 0.0,
              latency_max * 1e3, router.topology_cache().size(),
              router.topology_cache().hits(),
              router.topology_cache().misses());
  if (obs::enabled()) {
    const std::string summary =
        obs::render_summary(obs::Registry::instance().snapshot());
    if (!summary.empty()) std::printf("%s\n", summary.c_str());
  }
  if (st.deadline_exhausted > 0) return 5;
  if (st.unroutable_entries > 0) return 6;
  return 0;
}

struct ServeBenchArgs {
  std::string topology;
  long requests = 200;
  std::uint64_t seed = 1;
  long qps = 0;                // 0 = submit as fast as possible
  int batch = 8;
  std::string shed_policy = "expired-first";
  long queue_cap = 256;
  long queue_deadline_us = 0;  // 0 = requests never expire in the queue
  std::string policy_path;
  std::string json_path;
};

// Quantile as a JSON scalar: NaN (empty histogram) renders as null so a
// consumer asserting "p99 is a number" fails exactly when nothing was
// served.
std::string json_quantile(double value) {
  if (std::isnan(value)) return "null";
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  return buffer;
}

int cmd_serve_bench(const ServeBenchArgs& args, int workers) {
  const auto g = resolve_topology(args.topology);

  core::GnnPolicyConfig pcfg = core::experiment_gnn_config(5);
  util::Rng policy_rng(args.seed + 17);
  core::GnnPolicy policy(pcfg, policy_rng);
  if (!args.policy_path.empty()) {
    nn::load_parameters(args.policy_path, policy.parameters());
  }

  serve::EngineConfig ecfg;
  ecfg.workers = workers;
  ecfg.queue_capacity = static_cast<std::size_t>(args.queue_cap);
  ecfg.max_batch = args.batch;
  if (!serve::parse_shed_policy(args.shed_policy, ecfg.shed_policy)) {
    std::fprintf(stderr, "serve-bench: unknown shed policy '%s'\n",
                 args.shed_policy.c_str());
    return usage();
  }
  ecfg.queue_deadline = std::chrono::microseconds(args.queue_deadline_us);
  ecfg.router.deadline = std::chrono::seconds(5);  // generous: CI boxes crawl

  // The engine's latency/batch histograms need serving-scale buckets; the
  // first definition wins, so install them before any request is served.
  obs::Registry& registry = obs::Registry::instance();
  registry.enable();
  registry.define_histogram(
      "serve/engine/latency_us",
      {50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0, 20000.0,
       50000.0, 100000.0, 200000.0, 500000.0, 1000000.0, 5000000.0});
  registry.define_histogram("serve/engine/batch_size",
                            {1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0,
                             32.0, 64.0});

  // Pre-generate the demand stream so matrix generation is outside the
  // timed window.
  traffic::BimodalParams dparams;
  dparams.pair_density = 0.3;
  util::Rng rng(args.seed);
  std::vector<traffic::DemandMatrix> demands;
  demands.reserve(static_cast<std::size_t>(args.requests));
  for (long i = 0; i < args.requests; ++i) {
    demands.push_back(traffic::bimodal_matrix(g.num_nodes(), dparams, rng));
  }

  serve::Engine engine(&policy, ecfg);
  std::vector<std::future<serve::ServeOutcome>> futures;
  futures.reserve(static_cast<std::size_t>(args.requests));
  traffic::DemandSequence history;
  const auto start = std::chrono::steady_clock::now();
  const auto period =
      args.qps > 0 ? std::chrono::nanoseconds(1'000'000'000 / args.qps)
                   : std::chrono::nanoseconds(0);
  for (long i = 0; i < args.requests; ++i) {
    if (args.qps > 0) std::this_thread::sleep_until(start + period * i);
    serve::RouteRequest request;
    request.graph = &g;
    request.demand = demands[static_cast<std::size_t>(i)];
    request.history = history;
    futures.push_back(engine.submit(std::move(request)));
    history.push_back(demands[static_cast<std::size_t>(i)]);
    if (static_cast<int>(history.size()) > ecfg.router.memory) {
      history.erase(history.begin());
    }
  }
  engine.shutdown();
  const double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();

  // Every future must resolve: served or shed, never abandoned.
  long served = 0;
  long shed = 0;
  for (auto& future : futures) {
    if (future.get().shed) {
      ++shed;
    } else {
      ++served;
    }
  }

  const serve::EngineStats stats = engine.stats();
  const bool conserved = stats.offered == args.requests &&
                         stats.offered == stats.served + stats.shed &&
                         stats.served == served && stats.shed == shed;

  double p50 = std::numeric_limits<double>::quiet_NaN();
  double p99 = std::numeric_limits<double>::quiet_NaN();
  double mean_batch = 0.0;
  const obs::Snapshot snap = registry.snapshot();
  for (const auto& [name, h] : snap.histograms) {
    if (name == "serve/engine/latency_us") {
      p50 = obs::histogram_quantile(h, 0.5);
      p99 = obs::histogram_quantile(h, 0.99);
    } else if (name == "serve/engine/batch_size" && h.count > 0) {
      mean_batch = h.sum / static_cast<double>(h.count);
    }
  }

  const double throughput =
      elapsed > 0.0 ? static_cast<double>(served) / elapsed : 0.0;
  std::printf("%s: %ld requests, %d worker(s), batch limit %d, "
              "%s shedding, qps %s\n",
              g.name().c_str(), args.requests, ecfg.workers, ecfg.max_batch,
              serve::shed_policy_name(ecfg.shed_policy),
              args.qps > 0 ? std::to_string(args.qps).c_str() : "unpaced");
  util::Table table({"metric", "value"});
  table.add_row({"offered", std::to_string(stats.offered)});
  table.add_row({"served", std::to_string(stats.served)});
  table.add_row({"shed", std::to_string(stats.shed)});
  table.add_row({"batches", std::to_string(stats.batches)});
  table.add_row({"mean batch size", util::fmt(mean_batch, 2)});
  table.add_row({"throughput (req/s)", util::fmt(throughput, 1)});
  table.add_row({"p50 latency (us)",
                 std::isnan(p50) ? "n/a" : util::fmt(p50, 1)});
  table.add_row({"p99 latency (us)",
                 std::isnan(p99) ? "n/a" : util::fmt(p99, 1)});
  table.print();
  const serve::RouterStats rst = engine.router_stats();
  util::Table rungs({"rung", "decisions"});
  for (int r = 0; r < static_cast<int>(serve::Rung::kRungCount); ++r) {
    rungs.add_row({serve::rung_name(static_cast<serve::Rung>(r)),
                   std::to_string(rst.rung_decisions[r])});
  }
  rungs.print();
  const serve::CircuitBreaker::Stats& br = engine.breaker().stats();
  std::printf("breaker: %s (%ld trips, %ld probes, %ld recoveries); "
              "topology cache: %zu entries, %ld hits, %ld misses\n",
              serve::to_string(engine.breaker().state()), br.trips, br.probes,
              br.recoveries, engine.topology_cache().size(),
              engine.topology_cache().hits(),
              engine.topology_cache().misses());
  if (!conserved) {
    std::fprintf(stderr,
                 "serve-bench: conservation violated: offered %ld != "
                 "served %ld + shed %ld\n",
                 stats.offered, stats.served, stats.shed);
  }

  if (!args.json_path.empty()) {
    char buffer[768];
    std::snprintf(
        buffer, sizeof(buffer),
        "{\"schema\": \"gddr.serve_bench.v1\", \"topology\": \"%s\", "
        "\"workers\": %d, \"batch\": %d, \"qps\": %ld, "
        "\"shed_policy\": \"%s\", \"offered\": %ld, \"served\": %ld, "
        "\"shed\": %ld, \"batches\": %ld, \"mean_batch_size\": %.2f, "
        "\"throughput_rps\": %.1f, \"p50_latency_us\": %s, "
        "\"p99_latency_us\": %s, \"breaker_trips\": %ld, "
        "\"conserved\": %s}\n",
        g.name().c_str(), ecfg.workers, ecfg.max_batch, args.qps,
        serve::shed_policy_name(ecfg.shed_policy), stats.offered,
        stats.served, stats.shed, stats.batches, mean_batch, throughput,
        json_quantile(p50).c_str(), json_quantile(p99).c_str(), br.trips,
        conserved ? "true" : "false");
    util::write_file_atomic(args.json_path, buffer);
    std::printf("wrote %s\n", args.json_path.c_str());
  }
  return conserved ? 0 : 1;
}

int usage() {
  std::fprintf(stderr,
               "usage: gddr_cli [--workers N] [--metrics path "
               "[--metrics-every N]] <command> [...]\n"
               "  topos\n"
               "  show <topology>\n"
               "  export <topology> <file>\n"
               "  optimal <topology> [seed]\n"
               "  route <topology> [gamma]\n"
               "  tables <topology> [gamma]\n"
               "  eval <topology> [seed]\n"
               "  train <topology> [steps] [--checkpoint path] "
               "[--resume ckpt] [--every N] [--seed S]\n"
               "  serve-sim <topology> [requests] [--seed S] "
               "[--deadline-us N] [--gamma G] [--policy file]\n"
               "            [--fail-at N] [--heal-at M] [--fail-links K] "
               "[--isolate V]\n"
               "            [--registry dir] [--shadow-frac F] "
               "[--canary-frac F] [--promote-after N]\n"
               "  publish <ckpt> --registry <dir> [--retention K]\n"
               "  serve-bench <topology> [requests] [--qps Q] [--batch B]\n"
               "            [--shed-policy expired-first|reject-newest] "
               "[--queue-cap C]\n"
               "            [--queue-deadline-us D] [--seed S] "
               "[--policy file] [--json path]\n"
               "            (--workers N also sets the engine's worker "
               "thread count)\n"
               "<topology> is a catalogue name (see 'topos') or a "
               "gddr-topology file path.\n"
               "exit codes: 0 ok, 1 error, 2 usage, 3 solver, 4 I/O,\n"
               "            5 serve deadline exhausted, 6 serve demand "
               "unroutable (5 beats 6)\n");
  return 2;
}

int run(int argc, char** argv, util::ThreadPool& pool,
        const obs::MetricsOptions& metrics, int workers) {
  const std::string command = argv[1];
  if (command == "topos") return cmd_topos();
  if (command == "show" && argc >= 3) return cmd_show(argv[2]);
  if (command == "export" && argc >= 4) return cmd_export(argv[2], argv[3]);
  if (command == "optimal" && argc >= 3) {
    return cmd_optimal(argv[2],
                       argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 1);
  }
  if (command == "route" && argc >= 3) {
    return cmd_route(argv[2], argc >= 4 ? std::atof(argv[3]) : 2.0);
  }
  if (command == "tables" && argc >= 3) {
    return cmd_tables(argv[2], argc >= 4 ? std::atof(argv[3]) : 2.0);
  }
  if (command == "eval" && argc >= 3) {
    return cmd_eval(argv[2],
                    argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 1,
                    pool);
  }
  if (command == "train" && argc >= 3) {
    TrainArgs args;
    args.topology = argv[2];
    int i = 3;
    if (i < argc && argv[i][0] != '-') {
      args.steps = std::strtol(argv[i], nullptr, 10);
      if (args.steps <= 0) return usage();
      ++i;
    }
    for (; i < argc; ++i) {
      const std::string flag = argv[i];
      if (i + 1 >= argc) return usage();
      const char* value = argv[++i];
      if (flag == "--checkpoint") {
        args.checkpoint = value;
      } else if (flag == "--resume") {
        args.resume = value;
      } else if (flag == "--every") {
        args.every = std::strtol(value, nullptr, 10);
        if (args.every <= 0) return usage();
      } else if (flag == "--seed") {
        args.seed = std::strtoull(value, nullptr, 10);
      } else {
        return usage();
      }
    }
    return cmd_train(args, metrics);
  }
  if (command == "serve-sim" && argc >= 3) {
    ServeSimArgs args;
    args.topology = argv[2];
    int i = 3;
    if (i < argc && argv[i][0] != '-') {
      args.requests = std::strtol(argv[i], nullptr, 10);
      if (args.requests <= 0) return usage();
      ++i;
    }
    for (; i < argc; ++i) {
      const std::string flag = argv[i];
      if (i + 1 >= argc) return usage();
      const char* value = argv[++i];
      if (flag == "--seed") {
        args.seed = std::strtoull(value, nullptr, 10);
      } else if (flag == "--deadline-us") {
        args.deadline_us = std::strtol(value, nullptr, 10);
        if (args.deadline_us <= 0) return usage();
      } else if (flag == "--gamma") {
        args.gamma = std::atof(value);
        if (args.gamma <= 0.0) return usage();
      } else if (flag == "--policy") {
        args.policy_path = value;
      } else if (flag == "--fail-at") {
        args.fail_at = std::strtol(value, nullptr, 10);
        if (args.fail_at <= 0) return usage();
      } else if (flag == "--heal-at") {
        args.heal_at = std::strtol(value, nullptr, 10);
        if (args.heal_at <= 0) return usage();
      } else if (flag == "--fail-links") {
        args.fail_links = static_cast<int>(std::strtol(value, nullptr, 10));
        if (args.fail_links < 0) return usage();
      } else if (flag == "--isolate") {
        args.isolate = static_cast<int>(std::strtol(value, nullptr, 10));
        if (args.isolate < 0) return usage();
      } else if (flag == "--registry") {
        args.registry_dir = value;
      } else if (flag == "--shadow-frac") {
        args.shadow_frac = std::atof(value);
        if (args.shadow_frac <= 0.0 || args.shadow_frac > 1.0) return usage();
      } else if (flag == "--canary-frac") {
        args.canary_frac = std::atof(value);
        if (args.canary_frac <= 0.0 || args.canary_frac > 1.0) return usage();
      } else if (flag == "--promote-after") {
        args.promote_after = std::strtol(value, nullptr, 10);
        if (args.promote_after <= 0) return usage();
      } else {
        return usage();
      }
    }
    return cmd_serve_sim(args, metrics);
  }
  if (command == "publish" && argc >= 3) {
    PublishArgs args;
    args.checkpoint = argv[2];
    for (int i = 3; i < argc; ++i) {
      const std::string flag = argv[i];
      if (i + 1 >= argc) return usage();
      const char* value = argv[++i];
      if (flag == "--registry") {
        args.registry_dir = value;
      } else if (flag == "--retention") {
        args.retention = static_cast<int>(std::strtol(value, nullptr, 10));
        if (args.retention < 1) return usage();
      } else {
        return usage();
      }
    }
    if (args.registry_dir.empty()) return usage();
    return cmd_publish(args);
  }
  if (command == "serve-bench" && argc >= 3) {
    ServeBenchArgs args;
    args.topology = argv[2];
    int i = 3;
    if (i < argc && argv[i][0] != '-') {
      args.requests = std::strtol(argv[i], nullptr, 10);
      if (args.requests <= 0) return usage();
      ++i;
    }
    for (; i < argc; ++i) {
      const std::string flag = argv[i];
      if (i + 1 >= argc) return usage();
      const char* value = argv[++i];
      if (flag == "--seed") {
        args.seed = std::strtoull(value, nullptr, 10);
      } else if (flag == "--qps") {
        args.qps = std::strtol(value, nullptr, 10);
        if (args.qps < 0) return usage();
      } else if (flag == "--batch") {
        args.batch = static_cast<int>(std::strtol(value, nullptr, 10));
        if (args.batch <= 0) return usage();
      } else if (flag == "--shed-policy") {
        args.shed_policy = value;
      } else if (flag == "--queue-cap") {
        args.queue_cap = std::strtol(value, nullptr, 10);
        if (args.queue_cap <= 0) return usage();
      } else if (flag == "--queue-deadline-us") {
        args.queue_deadline_us = std::strtol(value, nullptr, 10);
        if (args.queue_deadline_us < 0) return usage();
      } else if (flag == "--policy") {
        args.policy_path = value;
      } else if (flag == "--json") {
        args.json_path = value;
      } else {
        return usage();
      }
    }
    return cmd_serve_bench(args, workers);
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  int workers = 0;
  gddr::obs::MetricsOptions metrics;
  try {
    workers = util::consume_workers_flag(argc, argv);
    metrics = gddr::obs::consume_metrics_flag(argc, argv);
    gddr::obs::apply(metrics);
    util::FaultInjector::instance().arm_from_env();
  } catch (const util::IoError& ex) {
    // A malformed GDDR_FAULTS schedule (or metrics sink) is an I/O-class
    // failure: exit 4, like every other bad external input.
    std::fprintf(stderr, "I/O error: %s\n", ex.what());
    return 4;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 2;
  }
  if (argc < 2) return usage();
  try {
    util::ThreadPool pool(workers);
    return run(argc, argv, pool, metrics, workers);
  } catch (const util::IoError& ex) {
    std::fprintf(stderr, "I/O error: %s\n", ex.what());
    return 4;
  } catch (const util::SolverError& ex) {
    std::fprintf(stderr, "solver error: %s\n", ex.what());
    return 3;
  } catch (const std::exception& ex) {
    std::fprintf(stderr, "error: %s\n", ex.what());
    return 1;
  } catch (...) {
    // Last-resort guard: a non-std exception must still produce a
    // diagnostic and a defined exit code instead of std::terminate.
    std::fprintf(stderr, "error: unknown exception\n");
    return 1;
  }
}
