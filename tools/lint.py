#!/usr/bin/env python3
"""Repo-convention linter for the GDDR codebase.

Checks conventions clang-tidy cannot express:

  * include hygiene — every in-repo include uses quotes with a path rooted
    at src/ ("graph/digraph.hpp", not "digraph.hpp" or <graph/digraph.hpp>);
  * determinism — no naked rand()/srand()/time(NULL); randomness goes
    through util::Rng so runs stay reproducible and seed-splittable;
  * no std::cout/std::cerr/printf in library code (src/) — output belongs
    to tools/ and bench/; libraries report through return values,
    exceptions and obs:: metrics;
  * no `using namespace std;` anywhere;
  * headers start with `#pragma once`;
  * no std::this_thread::sleep_for/sleep_until in tests/ — sleeping to
    synchronise with another thread breeds flaky tests; inject time
    points (CircuitBreaker, DeadlineBudget, serve::Engine all take `now`
    as a parameter) or busy-wait on the condition itself (spin_until /
    spin_at_least helpers);
  * no raw std sync primitives (std::mutex, std::shared_mutex,
    std::condition_variable, std::lock_guard, std::unique_lock,
    std::shared_lock, std::scoped_lock) outside src/util/sync.{hpp,cpp} —
    every lock goes through util::Mutex / util::SharedMutex so it carries
    thread-safety capability annotations and a lock rank (DESIGN.md §13).

Exit status: 0 clean, 1 findings, 2 usage error.  Run from the repo root:

    python3 tools/lint.py
"""
from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src"

# Directories whose sources are linted; library-only rules apply to src/.
LINT_DIRS = ["src", "tests", "tools", "bench"]

# In-repo top-level include roots, derived from src/ layout.
def in_repo_roots() -> set[str]:
    return {p.name for p in SRC.iterdir() if p.is_dir()}


STRIP_RE = re.compile(
    r'//[^\n]*|/\*.*?\*/|"(?:[^"\\\n]|\\.)*"', re.DOTALL
)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string literals, preserving line numbers."""

    def repl(m: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", m.group(0))

    return STRIP_RE.sub(repl, text)


NAKED_RAND_RE = re.compile(r"(?<![\w:])(?:s?rand|rand_r)\s*\(")
NAKED_TIME_RE = re.compile(r"(?<![\w:])time\s*\(\s*(?:NULL|nullptr|0)?\s*\)")
STDOUT_RE = re.compile(r"std\s*::\s*(cout|cerr)\b|(?<![\w:])f?printf\s*\(")
USING_STD_RE = re.compile(r"using\s+namespace\s+std\s*;")
TEST_SLEEP_RE = re.compile(r"sleep_(?:for|until)\s*\(")
RAW_SYNC_RE = re.compile(
    r"std\s*::\s*(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"condition_variable(?:_any)?|lock_guard|unique_lock|shared_lock|"
    r"scoped_lock)\b"
)
# The one place allowed to touch the std primitives: the wrapper itself.
RAW_SYNC_EXEMPT = {
    Path("src/util/sync.hpp"),
    Path("src/util/sync.cpp"),
}
INCLUDE_RE = re.compile(r'^\s*#\s*include\s+([<"])([^">]+)[">]', re.MULTILINE)


def lint_file(path: Path, roots: set[str]) -> list[str]:
    rel = path.relative_to(REPO)
    raw = path.read_text(encoding="utf-8")
    text = strip_comments_and_strings(raw)
    findings: list[str] = []

    def emit(pos: int, msg: str) -> None:
        line = text.count("\n", 0, pos) + 1
        findings.append(f"{rel}:{line}: {msg}")

    in_src = rel.parts[0] == "src"

    if path.suffix in (".hpp", ".h"):
        first = next(
            (l for l in raw.splitlines() if l.strip() and
             not l.lstrip().startswith("//")), "")
        if first.strip() != "#pragma once":
            findings.append(f"{rel}:1: header must start with #pragma once")

    for m in INCLUDE_RE.finditer(text):
        bracket, target = m.groups()
        top = target.split("/")[0]
        if top in roots:
            if bracket == "<":
                emit(m.start(),
                     f'in-repo include <{target}> must use quotes')
        elif bracket == '"' and "/" not in target:
            emit(m.start(),
                 f'include "{target}" must be rooted at src/ '
                 f'(e.g. "graph/{target}")')

    for m in NAKED_RAND_RE.finditer(text):
        emit(m.start(), "naked rand()/srand(): use util::Rng")
    for m in NAKED_TIME_RE.finditer(text):
        emit(m.start(), "time(NULL) seeding breaks reproducibility: "
                        "use util::Rng with an explicit seed")
    for m in USING_STD_RE.finditer(text):
        emit(m.start(), "`using namespace std;` is banned")

    if in_src:
        for m in STDOUT_RE.finditer(text):
            emit(m.start(), "stdout/stderr output in library code: "
                            "report via exceptions or obs:: metrics")

    if rel not in RAW_SYNC_EXEMPT:
        for m in RAW_SYNC_RE.finditer(text):
            emit(m.start(),
                 f"raw std::{m.group(1)}: use util::Mutex/SharedMutex/"
                 "CondVar and the MutexLock/SharedLock guards "
                 "(util/sync.hpp) so the lock carries capability "
                 "annotations and a rank")

    if rel.parts[0] == "tests":
        for m in TEST_SLEEP_RE.finditer(text):
            emit(m.start(), "sleep in a test: inject time points or "
                            "spin on the condition instead "
                            "(sleep-based schedules are flaky)")

    return findings


def main(argv: list[str]) -> int:
    if len(argv) > 1:
        print(__doc__, file=sys.stderr)
        return 2
    roots = in_repo_roots()
    files: list[Path] = []
    for d in LINT_DIRS:
        base = REPO / d
        if base.is_dir():
            files.extend(sorted(base.rglob("*.cpp")))
            files.extend(sorted(base.rglob("*.hpp")))
            files.extend(sorted(base.rglob("*.h")))
    findings: list[str] = []
    for f in files:
        findings.extend(lint_file(f, roots))
    for line in findings:
        print(line)
    print(f"lint.py: {len(files)} files checked, {len(findings)} finding(s)",
          file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
