// Train a GDDR agent on a fixed topology and compare it against the
// classical baselines — the paper's headline experiment at example scale.
//
// Usage:  ./build/examples/train_gddr [train_steps]   (default 10000)
#include <cstdio>
#include <cstdlib>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "nn/serialize.hpp"
#include "rl/ppo.hpp"
#include "routing/forwarding.hpp"
#include "routing/softmin.hpp"
#include "topo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace gddr;
  using namespace gddr::core;
  std::setvbuf(stdout, nullptr, _IONBF, 0);

  const long train_steps = argc > 1 ? std::strtol(argv[1], nullptr, 10)
                                    : 10000;

  // The paper's fixed-graph setup: Abilene, cyclical bimodal traffic,
  // memory 5, 7 train / 3 test sequences.
  util::Rng rng(1);
  const Scenario scenario =
      make_abilene_scenario(rng, experiment_scenario_params());
  std::printf("scenario: %s, %zu train / %zu test sequences\n",
              scenario.graph.name().c_str(), scenario.train_sequences.size(),
              scenario.test_sequences.size());

  // Baseline: classical shortest-path routing.
  mcf::OptimalCache cache;
  const EvalResult sp = evaluate_shortest_path({scenario}, 5, cache);
  std::printf("shortest-path baseline: %.4f x optimal\n", sp.mean_ratio);

  // The GDDR environment and GNN policy.
  EnvConfig env_cfg;  // memory 5, softmin translation defaults
  RoutingEnv env({scenario}, env_cfg, 7);
  util::Rng prng(2);
  GnnPolicy policy(experiment_gnn_config(env_cfg.memory), prng);
  std::printf("GNN policy: %zu parameters (topology-independent)\n",
              policy.num_parameters());

  rl::PpoTrainer trainer(policy, env, routing_ppo_config(), 3);
  const EvalResult before = evaluate_policy(trainer, env);
  std::printf("untrained agent:        %.4f x optimal\n", before.mean_ratio);

  std::printf("training for %ld steps...\n", train_steps);
  int iteration = 0;
  trainer.train(train_steps, [&](const rl::PpoIterationStats& stats) {
    if (++iteration % 10 == 0 && stats.episodes > 0) {
      std::printf("  step %6ld: mean episode reward %.2f\n",
                  trainer.total_env_steps(), stats.mean_episode_reward);
    }
  });

  const EvalResult after = evaluate_policy(trainer, env);
  std::printf("trained agent:          %.4f x optimal\n", after.mean_ratio);
  std::printf("\nsummary (1.0 = multicommodity-flow optimum):\n");
  std::printf("  optimal        1.0000\n");
  std::printf("  GDDR (GNN)     %.4f\n", after.mean_ratio);
  std::printf("  shortest path  %.4f\n", sp.mean_ratio);

  // Persist the trained policy and prove the round trip.
  const std::string model_path = "gddr_gnn_policy.bin";
  nn::save_parameters(model_path, policy.parameters());
  util::Rng reload_rng(99);
  GnnPolicy reloaded(experiment_gnn_config(env_cfg.memory), reload_rng);
  nn::load_parameters(model_path, reloaded.parameters());
  std::printf("\nsaved trained parameters to %s and reloaded them into a "
              "fresh policy\n",
              model_path.c_str());

  // Compile the learned strategy for one observation into SDN-style flow
  // tables (paper §IX: deployment in real-world SDN systems).
  env.set_mode(RoutingEnv::Mode::kTest);
  const rl::Observation obs = env.reset();
  const std::vector<double> action = trainer.act_deterministic(obs);
  const auto weights = routing::weights_from_actions(
      action, env_cfg.min_weight, env_cfg.max_weight);
  const auto strategy =
      routing::softmin_routing(scenario.graph, weights, env_cfg.softmin);
  const auto tables = routing::to_flow_tables(scenario.graph, strategy);
  std::printf("\n%s",
              routing::format_flow_table(scenario.graph, tables, 0).c_str());
  return 0;
}
