// Hyperparameter search (the paper tuned its hyperparameters with
// OpenTuner, §VIII-C; this is the equivalent random-search harness).
//
// Samples PPO hyperparameter configurations, trains a small GNN agent on
// the fast asymmetric-diamond scenario with each, and reports the
// configurations ranked by final test ratio.
//
// Usage:  ./build/examples/tune_hyperparams [trials] [steps_per_trial]
//         (defaults: 6 trials x 3000 steps — a couple of minutes)
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/evaluate.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "rl/ppo.hpp"
#include "util/table.hpp"

namespace {

using namespace gddr;
using namespace gddr::core;

graph::DiGraph asym_diamond() {
  graph::DiGraph g(4, "asym-diamond");
  g.add_bidirectional(0, 1, 1000.0);
  g.add_bidirectional(1, 3, 1000.0);
  g.add_bidirectional(0, 2, 4000.0);
  g.add_bidirectional(2, 3, 4000.0);
  return g;
}

struct Trial {
  double lr;
  double entropy_coef;
  double init_log_std;
  int epochs;
  double final_ratio;
};

}  // namespace

int main(int argc, char** argv) {
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  const int trials = argc > 1 ? std::atoi(argv[1]) : 6;
  const long steps = argc > 2 ? std::strtol(argv[2], nullptr, 10) : 3000;
  std::printf("random search: %d trials x %ld steps each\n", trials, steps);

  util::Rng scenario_rng(11);
  ScenarioParams params;
  params.sequence_length = 20;
  params.cycle_length = 5;
  params.train_sequences = 2;
  params.test_sequences = 1;
  params.demand.mouse_mean = 300.0;
  params.demand.elephant_mean = 900.0;
  const Scenario scenario = make_scenario(asym_diamond(), params,
                                          scenario_rng);

  util::Rng search_rng(7);
  std::vector<Trial> results;
  for (int trial = 0; trial < trials; ++trial) {
    Trial t{};
    t.lr = std::pow(10.0, search_rng.uniform(-3.3, -2.0));
    t.entropy_coef = std::pow(10.0, search_rng.uniform(-3.5, -2.0));
    t.init_log_std = search_rng.uniform(-1.4, -0.2);
    t.epochs = static_cast<int>(search_rng.uniform_int(3, 8));

    EnvConfig env_cfg;
    env_cfg.memory = 3;
    RoutingEnv env({scenario}, env_cfg, 29);
    util::Rng prng(12);
    GnnPolicyConfig pcfg;
    pcfg.memory = 3;
    pcfg.latent = 8;
    pcfg.steps = 2;
    pcfg.mlp_hidden = {16};
    pcfg.init_log_std = t.init_log_std;
    GnnPolicy policy(pcfg, prng);
    rl::PpoConfig ppo;
    ppo.rollout_steps = 128;
    ppo.minibatch_size = 32;
    ppo.epochs = t.epochs;
    ppo.learning_rate = t.lr;
    ppo.entropy_coef = t.entropy_coef;
    ppo.gamma = 0.0;
    ppo.gae_lambda = 0.0;
    rl::PpoTrainer trainer(policy, env, ppo, 31);
    trainer.train(steps);
    t.final_ratio = evaluate_policy(trainer, env).mean_ratio;
    std::printf("trial %d: lr=%.4f ent=%.4f log_std=%.2f epochs=%d -> "
                "ratio %.4f\n",
                trial, t.lr, t.entropy_coef, t.init_log_std, t.epochs,
                t.final_ratio);
    results.push_back(t);
  }

  std::sort(results.begin(), results.end(),
            [](const Trial& a, const Trial& b) {
              return a.final_ratio < b.final_ratio;
            });
  std::printf("\nranked configurations (lower final ratio is better):\n");
  util::Table table({"rank", "lr", "entropy", "init log_std", "epochs",
                     "final ratio"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Trial& t = results[i];
    table.add_row({std::to_string(i + 1), util::fmt(t.lr, 4),
                   util::fmt(t.entropy_coef, 4),
                   util::fmt(t.init_log_std, 2), std::to_string(t.epochs),
                   util::fmt(t.final_ratio)});
  }
  table.print();
  return 0;
}
