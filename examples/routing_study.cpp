// A study of classical routing strategies across the topology catalogue:
// how far from the multicommodity-flow optimum does each scheme land, and
// how does that depend on the network's structure?
//
// This example exercises the full non-learning surface of the library:
// topology catalogue, traffic generation, the LP solver, the FPTAS, the
// softmin translation and every baseline routing scheme.
//
// Usage:  ./build/examples/routing_study
#include <cstdio>

#include "graph/algorithms.hpp"
#include "mcf/fptas.hpp"
#include "mcf/optimal.hpp"
#include "routing/baselines.hpp"
#include "routing/softmin.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace gddr;
  std::setvbuf(stdout, nullptr, _IONBF, 0);
  std::printf("=== Routing strategies vs the MCF optimum, per topology ===\n");
  std::printf("(mean over 8 bimodal demand matrices; 1.0 = optimal)\n\n");

  traffic::BimodalParams demand_model;
  demand_model.pair_density = 0.25;
  demand_model.elephant_mean = 1200.0;

  util::Table table({"topology", "|V|", "|E|", "SP", "ECMP",
                     "softmin g=1", "softmin g=4", "k=3 paths",
                     "FPTAS err%"});
  for (const auto& name : topo::catalogue_names()) {
    const graph::DiGraph g = topo::by_name(name);
    util::Rng rng(1234);

    util::RunningStat sp_stat;
    util::RunningStat ecmp_stat;
    util::RunningStat soft1_stat;
    util::RunningStat soft4_stat;
    util::RunningStat multi_stat;
    util::RunningStat fptas_stat;

    const auto w = graph::unit_weights(g);
    const auto sp = routing::shortest_path_routing(g);
    const auto ecmp = routing::ecmp_routing(g, w);
    routing::SoftminOptions g1;
    g1.gamma = 1.0;
    routing::SoftminOptions g4;
    g4.gamma = 4.0;
    const std::vector<double> equal(static_cast<size_t>(g.num_edges()), 1.0);
    const auto soft1 = routing::softmin_routing(g, equal, g1);
    const auto soft4 = routing::softmin_routing(g, equal, g4);
    const auto multi = routing::uniform_multipath_routing(g, w, 3);

    for (int rep = 0; rep < 8; ++rep) {
      const auto dm =
          traffic::bimodal_matrix(g.num_nodes(), demand_model, rng);
      const double u_opt = mcf::solve_optimal(g, dm).u_max;
      if (u_opt <= 0.0) continue;
      sp_stat.add(routing::simulate(g, sp, dm).u_max / u_opt);
      ecmp_stat.add(routing::simulate(g, ecmp, dm).u_max / u_opt);
      soft1_stat.add(routing::simulate(g, soft1, dm).u_max / u_opt);
      soft4_stat.add(routing::simulate(g, soft4, dm).u_max / u_opt);
      multi_stat.add(routing::simulate(g, multi, dm).u_max / u_opt);
      mcf::FptasOptions fopt;
      fopt.epsilon = 0.1;
      fptas_stat.add(
          100.0 * (mcf::approx_optimal_u_max(g, dm, fopt) / u_opt - 1.0));
    }
    table.add_row({name, std::to_string(g.num_nodes()),
                   std::to_string(g.num_edges()),
                   util::fmt(sp_stat.mean(), 3),
                   util::fmt(ecmp_stat.mean(), 3),
                   util::fmt(soft1_stat.mean(), 3),
                   util::fmt(soft4_stat.mean(), 3),
                   util::fmt(multi_stat.mean(), 3),
                   util::fmt(fptas_stat.mean(), 2)});
  }
  table.print();
  std::printf("\nobservations: multipath spreading (ECMP / softmin) wins "
              "where the topology offers parallel paths; on tree-like "
              "regions all schemes converge; the FPTAS tracks the LP "
              "optimum within its guarantee, validating both solvers "
              "against each other.\n");
  return 0;
}
