// Quickstart: the GDDR library in ~60 lines.
//
//  1. load a topology,
//  2. generate a cyclical bimodal demand sequence,
//  3. compute the optimal congestion with the multicommodity-flow LP,
//  4. translate edge weights into a softmin routing and simulate it,
//  5. compare against shortest-path routing.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "graph/algorithms.hpp"
#include "mcf/optimal.hpp"
#include "routing/baselines.hpp"
#include "routing/routing.hpp"
#include "routing/softmin.hpp"
#include "topo/zoo.hpp"
#include "traffic/generators.hpp"
#include "util/rng.hpp"

int main() {
  using namespace gddr;

  // 1. The Abilene research backbone from the embedded topology catalogue.
  const graph::DiGraph network = topo::abilene();
  std::printf("network: %s with %d nodes and %d directed links\n",
              network.name().c_str(), network.num_nodes(),
              network.num_edges());

  // 2. A demand sequence with temporal regularity (paper §VIII-B).
  util::Rng rng(42);
  traffic::BimodalParams demand_model;
  demand_model.pair_density = 0.3;  // not every pair talks
  const traffic::DemandSequence sequence =
      traffic::cyclical_bimodal_sequence(network.num_nodes(),
                                         /*length=*/20, /*cycle_length=*/5,
                                         demand_model, rng);
  const traffic::DemandMatrix& dm = sequence.front();
  std::printf("demand: %.0f units total across %d node pairs\n", dm.total(),
              network.num_nodes() * (network.num_nodes() - 1));

  // 3. Optimal congestion: the LP lower bound every routing is scored
  //    against (paper Eq. 2 denominator).
  const mcf::OptimalResult optimal = mcf::solve_optimal(network, dm);
  std::printf("optimal max link utilisation U*: %.4f\n", optimal.u_max);

  // 4. A routing strategy from edge weights via softmin translation
  //    (paper §VI).  Equal weights spread traffic over every
  //    progress-making path.
  const std::vector<double> weights(
      static_cast<size_t>(network.num_edges()), 1.0);
  routing::SoftminOptions softmin_options;
  softmin_options.gamma = 2.0;
  const routing::Routing softmin =
      routing::softmin_routing(network, weights, softmin_options);
  const auto softmin_result = routing::simulate(network, softmin, dm);
  std::printf("softmin routing (equal weights): U = %.4f  (%.2fx optimal)\n",
              softmin_result.u_max, softmin_result.u_max / optimal.u_max);

  // 5. Classical shortest-path routing for comparison.
  const routing::Routing sp = routing::shortest_path_routing(network);
  const auto sp_result = routing::simulate(network, sp, dm);
  std::printf("shortest-path routing:           U = %.4f  (%.2fx optimal)\n",
              sp_result.u_max, sp_result.u_max / optimal.u_max);

  std::printf("\nnext steps: examples/train_gddr.cpp trains a GNN agent to "
              "pick the weights; examples/generalise.cpp transfers one "
              "agent across topologies.\n");
  return 0;
}
