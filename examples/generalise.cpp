// Generalisation across topologies — the paper's central claim.
//
// Trains one GNN agent on a mixture of small topologies, then evaluates
// the *same* agent (no retraining, no reconstruction) on a topology it has
// never seen, including a randomly mutated variant.  An MLP agent cannot
// even be constructed for the unseen graphs: its input/output sizes are
// fixed.
//
// Usage:  ./build/examples/generalise [train_steps]   (default 8000)
#include <cstdio>
#include <cstdlib>

#include "core/evaluate.hpp"
#include "core/experiment.hpp"
#include "core/policies.hpp"
#include "core/routing_env.hpp"
#include "rl/ppo.hpp"
#include "topo/mutate.hpp"
#include "topo/zoo.hpp"

int main(int argc, char** argv) {
  using namespace gddr;
  using namespace gddr::core;
  std::setvbuf(stdout, nullptr, _IONBF, 0);

  const long train_steps = argc > 1 ? std::strtol(argv[1], nullptr, 10)
                                    : 8000;
  const int memory = 5;
  ScenarioParams params = experiment_scenario_params();

  // Training mixture: three small topologies.
  util::Rng rng(1);
  std::vector<Scenario> train_set;
  for (const auto& name : {"SmallRing", "JanetLike", "MetroLike"}) {
    train_set.push_back(make_scenario(topo::by_name(name), params, rng));
    std::printf("training topology: %-10s |V|=%d |E|=%d\n", name,
                train_set.back().graph.num_nodes(),
                train_set.back().graph.num_edges());
  }

  EnvConfig env_cfg;
  env_cfg.memory = memory;
  RoutingEnv env(train_set, env_cfg, 7);
  util::Rng prng(2);
  GnnPolicy policy(experiment_gnn_config(memory), prng);
  rl::PpoTrainer trainer(policy, env, routing_ppo_config(), 3);
  std::printf("\ntraining one agent (%zu parameters) across the mixture "
              "for %ld steps...\n",
              policy.num_parameters(), train_steps);
  trainer.train(train_steps);
  const EvalResult on_mixture = evaluate_policy(trainer, env);
  std::printf("on the training mixture's test sequences: %.4f x optimal\n",
              on_mixture.mean_ratio);

  // Transfer target 1: an entirely unseen topology.
  {
    util::Rng rng2(11);
    std::vector<Scenario> unseen{
        make_scenario(topo::by_name("RenaterLike"), params, rng2)};
    mcf::OptimalCache cache;
    const EvalResult sp = evaluate_shortest_path(unseen, memory, cache);
    RoutingEnv unseen_env(unseen, env_cfg, 13);
    const EvalResult transfer = evaluate_policy(trainer, unseen_env);
    std::printf("\nunseen topology RenaterLike (|V|=12): agent %.4f vs "
                "shortest-path %.4f\n",
                transfer.mean_ratio, sp.mean_ratio);
  }

  // Transfer target 2: a mutated variant of a training topology
  // (the paper's "small modifications" case).
  {
    util::Rng mrng(17);
    std::vector<topo::Mutation> applied;
    graph::DiGraph mutated =
        topo::mutate(topo::by_name("MetroLike"), 2, mrng, &applied);
    std::printf("\nmutated MetroLike:");
    for (const auto& m : applied) std::printf(" [%s]", m.description.c_str());
    std::printf("\n");
    util::Rng rng3(19);
    std::vector<Scenario> mutated_set{
        make_scenario(std::move(mutated), params, rng3)};
    mcf::OptimalCache cache;
    const EvalResult sp = evaluate_shortest_path(mutated_set, memory, cache);
    RoutingEnv mutated_env(mutated_set, env_cfg, 23);
    const EvalResult transfer = evaluate_policy(trainer, mutated_env);
    std::printf("mutated topology: agent %.4f vs shortest-path %.4f\n",
                transfer.mean_ratio, sp.mean_ratio);
  }

  std::printf("\nthe same parameter vector served every topology above — "
              "the generalisation the paper's Figure 8 demonstrates.\n");
  return 0;
}
