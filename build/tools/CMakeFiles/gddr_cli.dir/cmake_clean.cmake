file(REMOVE_RECURSE
  "CMakeFiles/gddr_cli.dir/gddr_cli.cpp.o"
  "CMakeFiles/gddr_cli.dir/gddr_cli.cpp.o.d"
  "gddr_cli"
  "gddr_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gddr_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
