# Empty compiler generated dependencies file for gddr_cli.
# This may be replaced when dependencies are built.
