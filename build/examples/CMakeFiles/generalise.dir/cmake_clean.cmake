file(REMOVE_RECURSE
  "CMakeFiles/generalise.dir/generalise.cpp.o"
  "CMakeFiles/generalise.dir/generalise.cpp.o.d"
  "generalise"
  "generalise.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
