# Empty dependencies file for generalise.
# This may be replaced when dependencies are built.
