# Empty dependencies file for train_gddr.
# This may be replaced when dependencies are built.
