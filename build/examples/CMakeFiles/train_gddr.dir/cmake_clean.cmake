file(REMOVE_RECURSE
  "CMakeFiles/train_gddr.dir/train_gddr.cpp.o"
  "CMakeFiles/train_gddr.dir/train_gddr.cpp.o.d"
  "train_gddr"
  "train_gddr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_gddr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
