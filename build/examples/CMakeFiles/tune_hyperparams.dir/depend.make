# Empty dependencies file for tune_hyperparams.
# This may be replaced when dependencies are built.
