file(REMOVE_RECURSE
  "CMakeFiles/tune_hyperparams.dir/tune_hyperparams.cpp.o"
  "CMakeFiles/tune_hyperparams.dir/tune_hyperparams.cpp.o.d"
  "tune_hyperparams"
  "tune_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tune_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
