file(REMOVE_RECURSE
  "libgddr_core.a"
)
