file(REMOVE_RECURSE
  "CMakeFiles/gddr_core.dir/evaluate.cpp.o"
  "CMakeFiles/gddr_core.dir/evaluate.cpp.o.d"
  "CMakeFiles/gddr_core.dir/experiment.cpp.o"
  "CMakeFiles/gddr_core.dir/experiment.cpp.o.d"
  "CMakeFiles/gddr_core.dir/iterative_env.cpp.o"
  "CMakeFiles/gddr_core.dir/iterative_env.cpp.o.d"
  "CMakeFiles/gddr_core.dir/policies.cpp.o"
  "CMakeFiles/gddr_core.dir/policies.cpp.o.d"
  "CMakeFiles/gddr_core.dir/routing_env.cpp.o"
  "CMakeFiles/gddr_core.dir/routing_env.cpp.o.d"
  "CMakeFiles/gddr_core.dir/scenario.cpp.o"
  "CMakeFiles/gddr_core.dir/scenario.cpp.o.d"
  "libgddr_core.a"
  "libgddr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gddr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
