
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/evaluate.cpp" "src/core/CMakeFiles/gddr_core.dir/evaluate.cpp.o" "gcc" "src/core/CMakeFiles/gddr_core.dir/evaluate.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/gddr_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/gddr_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/iterative_env.cpp" "src/core/CMakeFiles/gddr_core.dir/iterative_env.cpp.o" "gcc" "src/core/CMakeFiles/gddr_core.dir/iterative_env.cpp.o.d"
  "/root/repo/src/core/policies.cpp" "src/core/CMakeFiles/gddr_core.dir/policies.cpp.o" "gcc" "src/core/CMakeFiles/gddr_core.dir/policies.cpp.o.d"
  "/root/repo/src/core/routing_env.cpp" "src/core/CMakeFiles/gddr_core.dir/routing_env.cpp.o" "gcc" "src/core/CMakeFiles/gddr_core.dir/routing_env.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/gddr_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/gddr_core.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rl/CMakeFiles/gddr_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/gddr_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gddr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/gddr_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/mcf/CMakeFiles/gddr_mcf.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/gddr_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/gddr_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gddr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gddr_util.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/gddr_lp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
