# Empty dependencies file for gddr_core.
# This may be replaced when dependencies are built.
