# Empty compiler generated dependencies file for gddr_graph.
# This may be replaced when dependencies are built.
