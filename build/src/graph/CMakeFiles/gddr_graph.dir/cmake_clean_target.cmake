file(REMOVE_RECURSE
  "libgddr_graph.a"
)
