file(REMOVE_RECURSE
  "CMakeFiles/gddr_graph.dir/algorithms.cpp.o"
  "CMakeFiles/gddr_graph.dir/algorithms.cpp.o.d"
  "CMakeFiles/gddr_graph.dir/digraph.cpp.o"
  "CMakeFiles/gddr_graph.dir/digraph.cpp.o.d"
  "libgddr_graph.a"
  "libgddr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gddr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
