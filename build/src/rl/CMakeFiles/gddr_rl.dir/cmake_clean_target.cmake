file(REMOVE_RECURSE
  "libgddr_rl.a"
)
