
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/ppo.cpp" "src/rl/CMakeFiles/gddr_rl.dir/ppo.cpp.o" "gcc" "src/rl/CMakeFiles/gddr_rl.dir/ppo.cpp.o.d"
  "/root/repo/src/rl/rollout.cpp" "src/rl/CMakeFiles/gddr_rl.dir/rollout.cpp.o" "gcc" "src/rl/CMakeFiles/gddr_rl.dir/rollout.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/gddr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gddr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
