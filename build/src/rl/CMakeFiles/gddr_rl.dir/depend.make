# Empty dependencies file for gddr_rl.
# This may be replaced when dependencies are built.
