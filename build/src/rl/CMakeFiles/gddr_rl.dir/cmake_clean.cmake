file(REMOVE_RECURSE
  "CMakeFiles/gddr_rl.dir/ppo.cpp.o"
  "CMakeFiles/gddr_rl.dir/ppo.cpp.o.d"
  "CMakeFiles/gddr_rl.dir/rollout.cpp.o"
  "CMakeFiles/gddr_rl.dir/rollout.cpp.o.d"
  "libgddr_rl.a"
  "libgddr_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gddr_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
