# Empty dependencies file for gddr_routing.
# This may be replaced when dependencies are built.
