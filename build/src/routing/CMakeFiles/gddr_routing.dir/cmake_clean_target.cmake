file(REMOVE_RECURSE
  "libgddr_routing.a"
)
