file(REMOVE_RECURSE
  "CMakeFiles/gddr_routing.dir/baselines.cpp.o"
  "CMakeFiles/gddr_routing.dir/baselines.cpp.o.d"
  "CMakeFiles/gddr_routing.dir/forwarding.cpp.o"
  "CMakeFiles/gddr_routing.dir/forwarding.cpp.o.d"
  "CMakeFiles/gddr_routing.dir/prune.cpp.o"
  "CMakeFiles/gddr_routing.dir/prune.cpp.o.d"
  "CMakeFiles/gddr_routing.dir/routing.cpp.o"
  "CMakeFiles/gddr_routing.dir/routing.cpp.o.d"
  "CMakeFiles/gddr_routing.dir/softmin.cpp.o"
  "CMakeFiles/gddr_routing.dir/softmin.cpp.o.d"
  "libgddr_routing.a"
  "libgddr_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gddr_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
