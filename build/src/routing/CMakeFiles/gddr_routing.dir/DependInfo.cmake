
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/routing/baselines.cpp" "src/routing/CMakeFiles/gddr_routing.dir/baselines.cpp.o" "gcc" "src/routing/CMakeFiles/gddr_routing.dir/baselines.cpp.o.d"
  "/root/repo/src/routing/forwarding.cpp" "src/routing/CMakeFiles/gddr_routing.dir/forwarding.cpp.o" "gcc" "src/routing/CMakeFiles/gddr_routing.dir/forwarding.cpp.o.d"
  "/root/repo/src/routing/prune.cpp" "src/routing/CMakeFiles/gddr_routing.dir/prune.cpp.o" "gcc" "src/routing/CMakeFiles/gddr_routing.dir/prune.cpp.o.d"
  "/root/repo/src/routing/routing.cpp" "src/routing/CMakeFiles/gddr_routing.dir/routing.cpp.o" "gcc" "src/routing/CMakeFiles/gddr_routing.dir/routing.cpp.o.d"
  "/root/repo/src/routing/softmin.cpp" "src/routing/CMakeFiles/gddr_routing.dir/softmin.cpp.o" "gcc" "src/routing/CMakeFiles/gddr_routing.dir/softmin.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gddr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/gddr_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/mcf/CMakeFiles/gddr_mcf.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/gddr_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gddr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
