file(REMOVE_RECURSE
  "libgddr_util.a"
)
