file(REMOVE_RECURSE
  "CMakeFiles/gddr_util.dir/rng.cpp.o"
  "CMakeFiles/gddr_util.dir/rng.cpp.o.d"
  "CMakeFiles/gddr_util.dir/stats.cpp.o"
  "CMakeFiles/gddr_util.dir/stats.cpp.o.d"
  "CMakeFiles/gddr_util.dir/table.cpp.o"
  "CMakeFiles/gddr_util.dir/table.cpp.o.d"
  "libgddr_util.a"
  "libgddr_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gddr_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
