# Empty dependencies file for gddr_util.
# This may be replaced when dependencies are built.
