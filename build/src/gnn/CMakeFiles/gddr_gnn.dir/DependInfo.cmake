
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gnn/graph_net.cpp" "src/gnn/CMakeFiles/gddr_gnn.dir/graph_net.cpp.o" "gcc" "src/gnn/CMakeFiles/gddr_gnn.dir/graph_net.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/gddr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gddr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gddr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
