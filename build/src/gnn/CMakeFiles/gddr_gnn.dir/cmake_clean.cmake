file(REMOVE_RECURSE
  "CMakeFiles/gddr_gnn.dir/graph_net.cpp.o"
  "CMakeFiles/gddr_gnn.dir/graph_net.cpp.o.d"
  "libgddr_gnn.a"
  "libgddr_gnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gddr_gnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
