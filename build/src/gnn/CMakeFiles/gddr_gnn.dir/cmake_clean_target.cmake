file(REMOVE_RECURSE
  "libgddr_gnn.a"
)
