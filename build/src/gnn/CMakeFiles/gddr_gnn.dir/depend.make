# Empty dependencies file for gddr_gnn.
# This may be replaced when dependencies are built.
