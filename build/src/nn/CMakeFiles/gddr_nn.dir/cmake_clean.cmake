file(REMOVE_RECURSE
  "CMakeFiles/gddr_nn.dir/gaussian.cpp.o"
  "CMakeFiles/gddr_nn.dir/gaussian.cpp.o.d"
  "CMakeFiles/gddr_nn.dir/mlp.cpp.o"
  "CMakeFiles/gddr_nn.dir/mlp.cpp.o.d"
  "CMakeFiles/gddr_nn.dir/optimizer.cpp.o"
  "CMakeFiles/gddr_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/gddr_nn.dir/serialize.cpp.o"
  "CMakeFiles/gddr_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/gddr_nn.dir/tape.cpp.o"
  "CMakeFiles/gddr_nn.dir/tape.cpp.o.d"
  "CMakeFiles/gddr_nn.dir/tensor.cpp.o"
  "CMakeFiles/gddr_nn.dir/tensor.cpp.o.d"
  "libgddr_nn.a"
  "libgddr_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gddr_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
