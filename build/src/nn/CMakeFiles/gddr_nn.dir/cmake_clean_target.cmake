file(REMOVE_RECURSE
  "libgddr_nn.a"
)
