# Empty compiler generated dependencies file for gddr_nn.
# This may be replaced when dependencies are built.
