# Empty compiler generated dependencies file for gddr_topo.
# This may be replaced when dependencies are built.
