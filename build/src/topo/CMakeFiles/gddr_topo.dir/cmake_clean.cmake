file(REMOVE_RECURSE
  "CMakeFiles/gddr_topo.dir/generators.cpp.o"
  "CMakeFiles/gddr_topo.dir/generators.cpp.o.d"
  "CMakeFiles/gddr_topo.dir/io.cpp.o"
  "CMakeFiles/gddr_topo.dir/io.cpp.o.d"
  "CMakeFiles/gddr_topo.dir/mutate.cpp.o"
  "CMakeFiles/gddr_topo.dir/mutate.cpp.o.d"
  "CMakeFiles/gddr_topo.dir/zoo.cpp.o"
  "CMakeFiles/gddr_topo.dir/zoo.cpp.o.d"
  "libgddr_topo.a"
  "libgddr_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gddr_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
