
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/generators.cpp" "src/topo/CMakeFiles/gddr_topo.dir/generators.cpp.o" "gcc" "src/topo/CMakeFiles/gddr_topo.dir/generators.cpp.o.d"
  "/root/repo/src/topo/io.cpp" "src/topo/CMakeFiles/gddr_topo.dir/io.cpp.o" "gcc" "src/topo/CMakeFiles/gddr_topo.dir/io.cpp.o.d"
  "/root/repo/src/topo/mutate.cpp" "src/topo/CMakeFiles/gddr_topo.dir/mutate.cpp.o" "gcc" "src/topo/CMakeFiles/gddr_topo.dir/mutate.cpp.o.d"
  "/root/repo/src/topo/zoo.cpp" "src/topo/CMakeFiles/gddr_topo.dir/zoo.cpp.o" "gcc" "src/topo/CMakeFiles/gddr_topo.dir/zoo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/gddr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gddr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
