file(REMOVE_RECURSE
  "libgddr_topo.a"
)
