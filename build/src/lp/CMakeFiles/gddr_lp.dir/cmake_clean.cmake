file(REMOVE_RECURSE
  "CMakeFiles/gddr_lp.dir/simplex.cpp.o"
  "CMakeFiles/gddr_lp.dir/simplex.cpp.o.d"
  "libgddr_lp.a"
  "libgddr_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gddr_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
