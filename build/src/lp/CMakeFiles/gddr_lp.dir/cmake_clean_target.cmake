file(REMOVE_RECURSE
  "libgddr_lp.a"
)
