# Empty compiler generated dependencies file for gddr_lp.
# This may be replaced when dependencies are built.
