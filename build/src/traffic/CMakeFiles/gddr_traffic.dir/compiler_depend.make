# Empty compiler generated dependencies file for gddr_traffic.
# This may be replaced when dependencies are built.
