file(REMOVE_RECURSE
  "libgddr_traffic.a"
)
