file(REMOVE_RECURSE
  "CMakeFiles/gddr_traffic.dir/demand.cpp.o"
  "CMakeFiles/gddr_traffic.dir/demand.cpp.o.d"
  "CMakeFiles/gddr_traffic.dir/generators.cpp.o"
  "CMakeFiles/gddr_traffic.dir/generators.cpp.o.d"
  "libgddr_traffic.a"
  "libgddr_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gddr_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
