
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcf/cache.cpp" "src/mcf/CMakeFiles/gddr_mcf.dir/cache.cpp.o" "gcc" "src/mcf/CMakeFiles/gddr_mcf.dir/cache.cpp.o.d"
  "/root/repo/src/mcf/fptas.cpp" "src/mcf/CMakeFiles/gddr_mcf.dir/fptas.cpp.o" "gcc" "src/mcf/CMakeFiles/gddr_mcf.dir/fptas.cpp.o.d"
  "/root/repo/src/mcf/mean_util.cpp" "src/mcf/CMakeFiles/gddr_mcf.dir/mean_util.cpp.o" "gcc" "src/mcf/CMakeFiles/gddr_mcf.dir/mean_util.cpp.o.d"
  "/root/repo/src/mcf/optimal.cpp" "src/mcf/CMakeFiles/gddr_mcf.dir/optimal.cpp.o" "gcc" "src/mcf/CMakeFiles/gddr_mcf.dir/optimal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/gddr_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gddr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/gddr_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gddr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
