file(REMOVE_RECURSE
  "libgddr_mcf.a"
)
