# Empty dependencies file for gddr_mcf.
# This may be replaced when dependencies are built.
