file(REMOVE_RECURSE
  "CMakeFiles/gddr_mcf.dir/cache.cpp.o"
  "CMakeFiles/gddr_mcf.dir/cache.cpp.o.d"
  "CMakeFiles/gddr_mcf.dir/fptas.cpp.o"
  "CMakeFiles/gddr_mcf.dir/fptas.cpp.o.d"
  "CMakeFiles/gddr_mcf.dir/mean_util.cpp.o"
  "CMakeFiles/gddr_mcf.dir/mean_util.cpp.o.d"
  "CMakeFiles/gddr_mcf.dir/optimal.cpp.o"
  "CMakeFiles/gddr_mcf.dir/optimal.cpp.o.d"
  "libgddr_mcf.a"
  "libgddr_mcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gddr_mcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
