# Empty dependencies file for bench_gnn_micro.
# This may be replaced when dependencies are built.
