file(REMOVE_RECURSE
  "CMakeFiles/bench_gnn_micro.dir/bench_gnn_micro.cpp.o"
  "CMakeFiles/bench_gnn_micro.dir/bench_gnn_micro.cpp.o.d"
  "bench_gnn_micro"
  "bench_gnn_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gnn_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
