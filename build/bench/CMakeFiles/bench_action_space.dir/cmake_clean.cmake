file(REMOVE_RECURSE
  "CMakeFiles/bench_action_space.dir/bench_action_space.cpp.o"
  "CMakeFiles/bench_action_space.dir/bench_action_space.cpp.o.d"
  "bench_action_space"
  "bench_action_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_action_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
