# Empty compiler generated dependencies file for bench_action_space.
# This may be replaced when dependencies are built.
