file(REMOVE_RECURSE
  "CMakeFiles/bench_lp_micro.dir/bench_lp_micro.cpp.o"
  "CMakeFiles/bench_lp_micro.dir/bench_lp_micro.cpp.o.d"
  "bench_lp_micro"
  "bench_lp_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lp_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
