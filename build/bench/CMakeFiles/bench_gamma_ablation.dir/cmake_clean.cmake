file(REMOVE_RECURSE
  "CMakeFiles/bench_gamma_ablation.dir/bench_gamma_ablation.cpp.o"
  "CMakeFiles/bench_gamma_ablation.dir/bench_gamma_ablation.cpp.o.d"
  "bench_gamma_ablation"
  "bench_gamma_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gamma_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
