# Empty compiler generated dependencies file for bench_gamma_ablation.
# This may be replaced when dependencies are built.
