file(REMOVE_RECURSE
  "CMakeFiles/bench_action_space_learning.dir/bench_action_space_learning.cpp.o"
  "CMakeFiles/bench_action_space_learning.dir/bench_action_space_learning.cpp.o.d"
  "bench_action_space_learning"
  "bench_action_space_learning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_action_space_learning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
