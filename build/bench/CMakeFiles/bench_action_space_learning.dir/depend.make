# Empty dependencies file for bench_action_space_learning.
# This may be replaced when dependencies are built.
