file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_generalisation.dir/bench_fig8_generalisation.cpp.o"
  "CMakeFiles/bench_fig8_generalisation.dir/bench_fig8_generalisation.cpp.o.d"
  "bench_fig8_generalisation"
  "bench_fig8_generalisation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_generalisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
