# Empty dependencies file for bench_fig8_generalisation.
# This may be replaced when dependencies are built.
