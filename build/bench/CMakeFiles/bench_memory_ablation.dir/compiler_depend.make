# Empty compiler generated dependencies file for bench_memory_ablation.
# This may be replaced when dependencies are built.
