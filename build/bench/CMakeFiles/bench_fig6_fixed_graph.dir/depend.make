# Empty dependencies file for bench_fig6_fixed_graph.
# This may be replaced when dependencies are built.
