file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_fixed_graph.dir/bench_fig6_fixed_graph.cpp.o"
  "CMakeFiles/bench_fig6_fixed_graph.dir/bench_fig6_fixed_graph.cpp.o.d"
  "bench_fig6_fixed_graph"
  "bench_fig6_fixed_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_fixed_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
