file(REMOVE_RECURSE
  "CMakeFiles/bench_prune_ablation.dir/bench_prune_ablation.cpp.o"
  "CMakeFiles/bench_prune_ablation.dir/bench_prune_ablation.cpp.o.d"
  "bench_prune_ablation"
  "bench_prune_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_prune_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
