# Empty dependencies file for bench_obs_ablation.
# This may be replaced when dependencies are built.
