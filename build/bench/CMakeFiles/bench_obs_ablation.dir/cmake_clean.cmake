file(REMOVE_RECURSE
  "CMakeFiles/bench_obs_ablation.dir/bench_obs_ablation.cpp.o"
  "CMakeFiles/bench_obs_ablation.dir/bench_obs_ablation.cpp.o.d"
  "bench_obs_ablation"
  "bench_obs_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_obs_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
