# Empty dependencies file for bench_routing_quality.
# This may be replaced when dependencies are built.
