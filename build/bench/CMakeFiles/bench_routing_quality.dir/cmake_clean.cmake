file(REMOVE_RECURSE
  "CMakeFiles/bench_routing_quality.dir/bench_routing_quality.cpp.o"
  "CMakeFiles/bench_routing_quality.dir/bench_routing_quality.cpp.o.d"
  "bench_routing_quality"
  "bench_routing_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_routing_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
