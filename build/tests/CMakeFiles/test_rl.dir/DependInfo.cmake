
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_rl.cpp" "tests/CMakeFiles/test_rl.dir/test_rl.cpp.o" "gcc" "tests/CMakeFiles/test_rl.dir/test_rl.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/gddr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/rl/CMakeFiles/gddr_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/gnn/CMakeFiles/gddr_gnn.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/gddr_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/routing/CMakeFiles/gddr_routing.dir/DependInfo.cmake"
  "/root/repo/build/src/mcf/CMakeFiles/gddr_mcf.dir/DependInfo.cmake"
  "/root/repo/build/src/lp/CMakeFiles/gddr_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/traffic/CMakeFiles/gddr_traffic.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/gddr_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gddr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/gddr_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
